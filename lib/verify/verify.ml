(* IR-level bounds + race analysis. See verify.mli for the contract.

   The bounds interpreter is a single in-order walk per function: SSA
   dominance guarantees a value's definition is visited before any use,
   so with loop-carried values pinned to ⊤ one pass reaches the
   fixpoint. Intervals are exact boxes — after lowering, every loop
   bound, affine coefficient and memref shape is a compile-time
   constant, so `Escapes` is a real out-of-bounds witness, not an
   artifact of abstraction. *)

open Mlc_ir
open Mlc_dialects
module D = Mlc_diag.Diag

type verdict = Proved | Unproved | Oob

let verdict_join a b =
  match (a, b) with
  | Oob, _ | _, Oob -> Oob
  | Unproved, _ | _, Unproved -> Unproved
  | Proved, Proved -> Proved

let verdict_to_string = function
  | Proved -> "proved"
  | Unproved -> "unproved"
  | Oob -> "out-of-bounds"

let finding ?(severity = D.Error) ?op cls fmt =
  Format.kasprintf
    (fun message -> D.make ~severity ?op ~pass:cls ~component:"verify" message)
    fmt

let errors ds = List.filter (fun d -> d.D.severity = D.Error) ds

let error_of ds =
  match errors ds with
  | [] -> None
  | d :: rest ->
    Some (List.fold_left (fun acc e -> D.add_note acc (D.summary e)) d rest)

(* ------------------------------------------------------------------ *)
(* Bounds: interval abstract interpretation                            *)
(* ------------------------------------------------------------------ *)

type env = { ivals : (int, Interval.t) Hashtbl.t }

let bind env v i = Hashtbl.replace env.ivals (Ir.Value.id v) i

let interval_of env v =
  match Hashtbl.find_opt env.ivals (Ir.Value.id v) with
  | Some i -> i
  | None -> (
    match Arith.as_constant v with
    | Some (Attr.Int n) -> Interval.const n
    | _ -> Interval.top)

(* Interval of one result expression of an affine map evaluated over the
   iteration box [0, ub_d - 1] per dimension. Exact for linear forms
   (dimensions are independent); Top on division/modulo or symbols. *)
let expr_interval (m : Affine.map) ubs expr =
  match
    Affine.linear_form ~num_dims:m.Affine.num_dims ~num_syms:m.Affine.num_syms
      expr
  with
  | exception Affine.Not_affine _ -> Interval.top
  | dcoefs, scoefs, c ->
    if Array.exists (fun s -> s <> 0) scoefs then Interval.top
    else begin
      let lo = ref c and hi = ref c in
      Array.iteri
        (fun d coef ->
          let ub = try List.nth ubs d with _ -> 0 in
          let a = 0 and b = max 0 (ub - 1) in
          let p = coef * a and q = coef * b in
          lo := !lo + min p q;
          hi := !hi + max p q)
        dcoefs;
      Interval.range !lo !hi
    end

let describe_access v =
  match Ir.Value.ty v with
  | Ty.Memref { shape; _ } ->
    Printf.sprintf "memref<%s>"
      (String.concat "x" (List.map string_of_int shape))
  | t -> Ty.to_string t

(* One finding per out-of-range (or undecidable) index. *)
let check_index ~findings ~opname ~what ~dim iv extent =
  match Interval.within iv ~lo:0 ~hi:(extent - 1) with
  | `Yes -> ()
  | `Escapes ->
    findings :=
      finding ~op:opname "bounds"
        "%s: index %s escapes dimension %d of extent %d" what
        (Interval.to_string iv) dim extent
      :: !findings
  | `Unknown ->
    findings :=
      finding ~severity:D.Warning ~op:opname "bounds"
        "%s: index into dimension %d of extent %d not statically bounded"
        what dim extent
      :: !findings

(* Map-based operand accesses (linalg.generic / memref_stream.generic):
   each map result is an element coordinate of the operand. *)
let check_mapped_access ~findings ~opname ubs (m : Affine.map) v =
  match Ir.Value.ty v with
  | Ty.Memref { shape; _ } ->
    List.iteri
      (fun dim expr ->
        match List.nth_opt shape dim with
        | None -> ()
        | Some extent ->
          check_index ~findings ~opname
            ~what:(Printf.sprintf "access to %s" (describe_access v))
            ~dim
            (expr_interval m ubs expr)
            extent)
      m.Affine.exprs
  | _ -> ()

let rec eval_block env findings blk =
  Ir.Block.iter_ops blk (fun op -> eval_op env findings op)

and eval_region env findings op =
  List.iter
    (fun r -> List.iter (eval_block env findings) (Ir.Region.blocks r))
    (Ir.Op.regions op)

and eval_op env findings op =
  let name = Ir.Op.name op in
  if name = Arith.constant_op then begin
    match Arith.as_constant (Ir.Op.result op 0) with
    | Some (Attr.Int n) -> bind env (Ir.Op.result op 0) (Interval.const n)
    | _ -> ()
  end
  else if name = Arith.addi_op then
    bind env (Ir.Op.result op 0)
      (Interval.add
         (interval_of env (Ir.Op.operand op 0))
         (interval_of env (Ir.Op.operand op 1)))
  else if name = Arith.subi_op then
    bind env (Ir.Op.result op 0)
      (Interval.sub
         (interval_of env (Ir.Op.operand op 0))
         (interval_of env (Ir.Op.operand op 1)))
  else if name = Arith.muli_op then
    bind env (Ir.Op.result op 0)
      (Interval.mul
         (interval_of env (Ir.Op.operand op 0))
         (interval_of env (Ir.Op.operand op 1)))
  else if name = Memref.dim_op then begin
    (* memref.dim of a static shape with a constant dimension index. *)
    match
      ( Ir.Value.ty (Ir.Op.operand op 0),
        interval_of env (Ir.Op.operand op 1) )
    with
    | Ty.Memref { shape; _ }, Interval.Range (d, d') when d = d' -> (
      match List.nth_opt shape d with
      | Some extent -> bind env (Ir.Op.result op 0) (Interval.const extent)
      | None -> ())
    | _ -> ()
  end
  else if name = Scf.for_op then begin
    let lb = interval_of env (Scf.lb op)
    and ub = interval_of env (Scf.ub op)
    and step = interval_of env (Scf.step op) in
    let iv =
      match (lb, ub, step) with
      | Interval.Range (llo, _), Interval.Range (_, uhi), Interval.Range (s, _)
        when s >= 1 ->
        if uhi - 1 >= llo then Interval.Range (llo, uhi - 1)
        else Interval.const llo (* body never runs; any value is sound *)
      | _ -> Interval.top
    in
    bind env (Scf.induction_var op) iv;
    List.iter (fun a -> bind env a Interval.top) (Scf.iter_args op);
    List.iter (fun r -> bind env r Interval.top) (Ir.Op.results op);
    eval_block env findings (Scf.body op)
  end
  else if name = Scf.forall_op then begin
    bind env (Scf.thread_id op)
      (Interval.range 0 (max 0 (Scf.num_threads op - 1)));
    eval_block env findings (Scf.forall_body op)
  end
  else if name = Memref.load_op || name = Memref.store_op then begin
    (* load: memref :: indices; store: value :: memref :: indices *)
    let base = if name = Memref.load_op then 0 else 1 in
    (match Ir.Value.ty (Ir.Op.operand op base) with
    | Ty.Memref { shape; _ } ->
      List.iteri
        (fun dim extent ->
          check_index ~findings ~opname:name
            ~what:
              (Printf.sprintf "%s on %s" name
                 (describe_access (Ir.Op.operand op base)))
            ~dim
            (interval_of env (Ir.Op.operand op (base + 1 + dim)))
            extent)
        shape
    | _ -> ());
    List.iter (fun r -> bind env r Interval.top) (Ir.Op.results op)
  end
  else if name = Linalg.generic_op then begin
    match Linalg.infer_bounds op with
    | exception Failure _ -> eval_region env findings op
    | ubs ->
      let operands = Linalg.ins op @ Linalg.outs op in
      let maps = Linalg.indexing_maps op in
      List.iter2
        (fun v m -> check_mapped_access ~findings ~opname:name ubs m v)
        operands maps;
      eval_region env findings op
  end
  else if name = Memref_stream.generic_op then begin
    let ubs = Memref_stream.bounds op in
    let operands = Memref_stream.ins op @ Memref_stream.outs op in
    let maps = Memref_stream.indexing_maps op in
    List.iter2
      (fun v m -> check_mapped_access ~findings ~opname:name ubs m v)
      operands maps;
    eval_region env findings op
  end
  else if name = Memref_stream.streaming_region_op then begin
    (* Each stream walks flat element offsets: the pattern's coordinate
       box × row-major strides, plus the optional hoisted offset. *)
    let streams = Memref_stream.streamed_operands op in
    let patterns = Memref_stream.patterns op in
    let offsets = Memref_stream.offset_operands op in
    List.iteri
      (fun k v ->
        match Ir.Value.ty v with
        | Ty.Memref { shape; _ } ->
          let p = List.nth patterns k in
          let m = p.Attr.ip_map in
          let strides = Ty.row_major_strides shape in
          let flat =
            List.fold_left2
              (fun acc expr stride ->
                Interval.add acc
                  (Interval.mul
                     (expr_interval m p.Attr.ip_ub expr)
                     (Interval.const stride)))
              (Interval.const 0) m.Affine.exprs strides
          in
          let off =
            match List.nth_opt offsets k with
            | Some v -> interval_of env v
            | None -> Interval.const 0
          in
          let total = Interval.add flat off in
          let n = Ty.num_elements shape in
          (match Interval.within total ~lo:0 ~hi:(n - 1) with
          | `Yes -> ()
          | `Escapes ->
            findings :=
              finding ~op:name "bounds"
                "stream %d over %s: element offsets %s escape [0, %d)" k
                (describe_access v) (Interval.to_string total) n
              :: !findings
          | `Unknown ->
            findings :=
              finding ~severity:D.Warning ~op:name "bounds"
                "stream %d over %s: element offsets not statically bounded"
                k (describe_access v)
              :: !findings)
        | _ -> ())
      streams;
    eval_region env findings op
  end
  else begin
    (* Unknown op: results and nested block args stay ⊤ (sound). *)
    List.iter (fun r -> bind env r Interval.top) (Ir.Op.results op);
    eval_region env findings op
  end

let bounds_findings m =
  let findings = ref [] in
  Ir.walk_incl m (fun op ->
      if Ir.Op.name op = Func.func_op then begin
        let env = { ivals = Hashtbl.create 64 } in
        eval_block env findings (Func.body op)
      end);
  List.rev !findings

let verdict_of ds =
  if List.exists (fun d -> d.D.severity = D.Error) ds then Oob
  else if List.exists (fun d -> d.D.severity = D.Warning) ds then Unproved
  else Proved

let bounds_verdict m = verdict_of (bounds_findings m)

(* ------------------------------------------------------------------ *)
(* Races: forall/slice discipline + staging disjointness               *)
(* ------------------------------------------------------------------ *)

let inside_forall forall v =
  let anchor =
    match Ir.Value.def v with
    | Ir.Op_result (o, _) -> Some o
    | Ir.Block_arg (blk, _) -> Ir.Block.parent_op blk
  in
  match anchor with
  | None -> false
  | Some o ->
    Ir.Op.equal o forall
    || Option.is_some (Ir.ancestor_op o (fun a -> Ir.Op.equal a forall))

let check_forall findings forall =
  let tid = Scf.thread_id forall in
  let n = Scf.num_threads forall in
  let check_write who dest =
    match Ir.Value.defining_op dest with
    | Some d when Ir.Op.name d = Cluster.slice_op -> ()
    | _ when inside_forall forall dest -> () (* thread-private *)
    | _ ->
      findings :=
        finding ~op:who "race"
          "%s writes to %s, which is neither a cluster.slice of a shared \
           buffer nor thread-private: the %d forall instances race"
          who (describe_access dest) n
        :: !findings
  in
  Ir.walk forall (fun op ->
      let name = Ir.Op.name op in
      if name = Cluster.slice_op then begin
        if not (Ir.Value.equal (Ir.Op.operand op 1) tid) then
          findings :=
            finding ~op:name "race"
              "cluster.slice is not keyed by the enclosing scf.forall's \
               thread id: instances may pick the same block"
            :: !findings;
        let parts = Cluster.parts op in
        if parts <> n then
          findings :=
            finding ~op:name "race"
              "cluster.slice splits %d ways under a %d-thread scf.forall: \
               per-core blocks are not disjoint"
              parts n
            :: !findings
      end
      else if name = Memref.store_op then check_write name (Ir.Op.operand op 1)
      else if name = Linalg.fill_op || name = Memref_stream.fill_op then
        List.iter
          (fun v ->
            match Ir.Value.ty v with
            | Ty.Memref _ -> check_write name v
            | _ -> ())
          (Ir.Op.operands op)
      else if name = Linalg.generic_op then
        List.iter
          (fun v ->
            match Ir.Value.ty v with
            | Ty.Memref _ -> check_write name v
            | _ -> ())
          (Linalg.outs op)
      else if name = Memref_stream.generic_op then
        List.iter
          (fun v ->
            match Ir.Value.ty v with
            | Ty.Memref _ -> check_write name v
            | _ -> ())
          (Memref_stream.outs op)
      else if name = Memref_stream.streaming_region_op then begin
        let n_in = Memref_stream.num_ins op in
        List.iteri
          (fun k v ->
            if k >= n_in then
              match Ir.Value.ty v with
              | Ty.Memref _ -> check_write name v
              | _ -> ())
          (Memref_stream.streamed_operands op)
      end)

let race_findings m =
  let findings = ref [] in
  Ir.walk_incl m (fun op ->
      if Ir.Op.name op = Scf.forall_op then check_forall findings op);
  List.rev !findings

let check_staging regions =
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b)
      (List.filter (fun (_, _, sz) -> sz > 0) regions)
  in
  let rec go acc = function
    | (l1, b1, s1) :: ((l2, b2, s2) :: _ as rest) ->
      let acc =
        if b2 < b1 + s1 then
          finding "race"
            "staged TCDM regions overlap: %s [0x%x, +%d) and %s [0x%x, +%d)"
            l1 b1 s1 l2 b2 s2
          :: acc
        else acc
      in
      go acc rest
    | _ -> List.rev acc
  in
  go [] sorted

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let analysis_findings m = bounds_findings m @ race_findings m

let check_module m =
  match Verifier.verify_result m with
  | Error msg -> [ finding "structure" "%s" msg ]
  | Ok () -> analysis_findings m

let checkpoint ~pass_name:_ m =
  match error_of (analysis_findings m) with
  | None -> ()
  | Some d ->
    raise (D.Diagnostic { d with D.ir_before = Some (Printer.to_string m) })
