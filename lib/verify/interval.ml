type t = Top | Range of int * int

let top = Top
let const n = Range (n, n)
let range lo hi = if lo <= hi then Range (lo, hi) else Range (hi, lo)

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Range (l1, h1), Range (l2, h2) -> Range (min l1 l2, max h1 h2)

let add a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Range (l1, h1), Range (l2, h2) -> Range (l1 + l2, h1 + h2)

let sub a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Range (l1, h1), Range (l2, h2) -> Range (l1 - h2, h1 - l2)

let mul a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Range (l1, h1), Range (l2, h2) ->
    let p1 = l1 * l2 and p2 = l1 * h2 and p3 = h1 * l2 and p4 = h1 * h2 in
    Range (min (min p1 p2) (min p3 p4), max (max p1 p2) (max p3 p4))

let within t ~lo ~hi =
  match t with
  | Top -> `Unknown
  | Range (l, h) -> if l >= lo && h <= hi then `Yes else `Escapes

let to_string = function
  | Top -> "⊤"
  | Range (l, h) -> if l = h then string_of_int l else Printf.sprintf "[%d, %d]" l h
