(** IR-level static analysis over the structured pipeline — the third
    leg of the correctness tripod (differential fuzzer ⟂ asm lint ⟂ IR
    verifier). Run as a mandatory checkpoint after every pipeline pass
    (see {!Mlc_ir.Pass.run_pipeline}'s [checkpoint]), it complements the
    structural {!Mlc_ir.Verifier} with two semantic analyses:

    - {b bounds}: an interval-domain abstract interpretation
      ({!Interval}) over structured loops proving every
      memref/stream/TCDM access in-bounds statically. An [Error]
      finding means a concrete out-of-bounds access exists (the
      post-lowering constants make the box analysis exact for linear
      maps); a [Warning] means the access could not be proven either
      way (a data-dependent index).
    - {b race}: every [cluster.slice] under an [scf.forall] must split
      the buffer exactly [num_threads] ways keyed by the forall's own
      thread id (pairwise-disjoint per-core row blocks), and every
      write inside the forall must land in a slice-derived or
      thread-private buffer. {!check_staging} separately proves the
      cluster wrapper's DMA-staged TCDM regions disjoint.

    Findings are {!Mlc_diag.Diag.t} values with [component = "verify"]
    and the check class ("structure", "bounds", "race") in the [pass]
    field, mirroring {!Mlc_analysis.Lint}'s conventions. *)

open Mlc_ir

(** The bounds checker's three-valued verdict for a module. *)
type verdict =
  | Proved  (** every access statically in-bounds *)
  | Unproved  (** at least one access could not be decided *)
  | Oob  (** a concrete out-of-bounds access exists *)

(** The weaker of two verdicts ([Oob] < [Unproved] < [Proved]); used to
    aggregate per-checkpoint verdicts over a whole pipeline. *)
val verdict_join : verdict -> verdict -> verdict

val verdict_to_string : verdict -> string

(** Interval bounds analysis over every function in the module. *)
val bounds_findings : Ir.op -> Mlc_diag.Diag.t list

val bounds_verdict : Ir.op -> verdict

(** Cluster race analysis over every [scf.forall] in the module. *)
val race_findings : Ir.op -> Mlc_diag.Diag.t list

(** [bounds_findings] plus [race_findings] — the semantic layer alone
    (structural verification is the pass manager's own
    {!Mlc_ir.Verifier} run). *)
val analysis_findings : Ir.op -> Mlc_diag.Diag.t list

(** Full standalone check: structural verification first (reported as a
    "structure" finding, guarding the analyses against corrupt IR),
    then the semantic analyses. The entry point of
    [snitchc check --ir] and [compile --verify]. *)
val check_module : Ir.op -> Mlc_diag.Diag.t list

(** Prove a set of TCDM regions [(label, base, bytes)] pairwise
    disjoint; overlaps are "race" errors. The cluster runner feeds it
    the staged buffers, per-core scratch areas and per-core stacks. *)
val check_staging : (string * int * int) list -> Mlc_diag.Diag.t list

(** The per-pass checkpoint for {!Mlc_ir.Pass.run_pipeline}: raises
    {!Mlc_diag.Diag.Diagnostic} on the first error-severity analysis
    finding, with the at-checkpoint IR attached as [ir_before] so the
    pass manager's crash bundle shows the IR exactly as the offending
    pass left it. *)
val checkpoint : pass_name:string -> Ir.op -> unit

(** Error-severity findings only. *)
val errors : Mlc_diag.Diag.t list -> Mlc_diag.Diag.t list

(** Aggregate errors into one diagnostic (rest as notes), as
    {!Mlc_analysis.Lint.error_of}. *)
val error_of : Mlc_diag.Diag.t list -> Mlc_diag.Diag.t option
