(* Quickstart: compile a ReLU micro-kernel from the linalg level down to
   Snitch assembly, execute it on the bundled cycle-level simulator, and
   report the paper's metrics.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a kernel from the suite (paper Table 1) at a concrete shape. *)
  let spec = Mlc_kernels.Builders.relu ~n:16 ~m:16 () in

  (* 2. Compile + run + validate in one call: the kernel is lowered
        through the multi-level pipeline (linalg -> memref_stream ->
        rv/snitch dialects -> spill-free register allocation -> assembly),
        simulated against random inputs, and compared with the reference
        interpreter. *)
  let result = Mlc.Runner.run spec in

  print_endline "--- generated Snitch assembly -------------------------";
  print_string result.Mlc.Runner.asm;
  print_endline "--- metrics -------------------------------------------";
  let m = result.Mlc.Runner.metrics in
  Printf.printf "cycles          : %d\n" m.Mlc.Runner.cycles;
  Printf.printf "FPU utilisation : %.1f %%\n" m.Mlc.Runner.fpu_util;
  Printf.printf "throughput      : %.2f FLOPs/cycle\n" m.Mlc.Runner.flops_per_cycle;
  Printf.printf "explicit memory : %d loads, %d stores (SSRs stream the rest)\n"
    m.Mlc.Runner.loads m.Mlc.Runner.stores;
  Printf.printf "validation      : max |error| = %g vs reference interpreter\n"
    result.Mlc.Runner.max_abs_err;
  (match result.Mlc.Runner.report with
  | Some rep ->
    Printf.printf "registers       : %d/20 FP, %d/15 integer — no spills\n"
      rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
  | None -> ());
  assert (result.Mlc.Runner.max_abs_err = 0.0);
  print_endline "ok."
