(* Ingest a kernel from the textual IR format and compile it — the
   interoperability path the paper relies on between xDSL and MLIR
   (§4.1: "Interoperability ... is achieved via the common text IR
   format"). The module below is written in the generic operation
   syntax; a frontend (or another compiler) could have produced it.

     dune exec examples/from_textual_ir.exe *)

open Mlc_ir

(* axpby: z = 2.5*x + y, element-wise over 8x8 buffers. *)
let textual_module =
  {|"builtin.module"()({
^bb0():
  "func.func"()({
  ^bb1(%x : memref<8x8xf64>, %y : memref<8x8xf64>, %z : memref<8x8xf64>):
    %a = "arith.constant"(){value = 2.5} : () -> (f64)
    "linalg.generic"(%x, %a, %y, %z)({
    ^bb2(%xe : f64, %ae : f64, %ye : f64, %ze : f64):
      %p = "arith.mulf"(%xe, %ae) : (f64, f64) -> (f64)
      %s = "arith.addf"(%p, %ye) : (f64, f64) -> (f64)
      "linalg.yield"(%s) : (f64) -> ()
    }){indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> ()>, affine_map<(d0, d1) -> (d0, d1)>, affine_map<(d0, d1) -> (d0, d1)>], ins = 3, iterator_types = #iterators<parallel, parallel>} : (memref<8x8xf64>, f64, memref<8x8xf64>, memref<8x8xf64>) -> ()
    "func.return"() : () -> ()
  }){function_type = (memref<8x8xf64>, memref<8x8xf64>, memref<8x8xf64>) -> (), sym_name = "axpby"} : () -> ()
}) : () -> ()|}

let () =
  (* 1. Parse and verify the textual module. *)
  let m = Parser.parse_string textual_module in
  Verifier.verify m;
  Printf.printf "parsed %d ops from textual IR\n"
    (List.length (Ir.collect m (fun _ -> true)));

  (* 2. Round-trip sanity: print -> parse -> print is stable. *)
  let t1 = Printer.to_string m in
  let t2 = Printer.to_string (Parser.parse_string t1) in
  assert (String.equal t1 t2);
  print_endline "textual round-trip stable";

  (* 3. Wrap it as a runnable spec and push it through the harness. *)
  let parse_fresh () =
    let m = Parser.parse_string textual_module in
    Verifier.verify m;
    m
  in
  let spec =
    {
      Mlc_kernels.Builders.kernel_name = "axpby";
      fn_name = "axpby";
      elem = Ty.F64;
      args =
        [
          Mlc_kernels.Builders.Buf_in [ 8; 8 ];
          Mlc_kernels.Builders.Buf_in [ 8; 8 ];
          Mlc_kernels.Builders.Buf_out [ 8; 8 ];
        ];
      flops = 2 * 8 * 8;
      min_cycles = 8 * 8;
      build = parse_fresh;
    }
  in
  let r = Mlc.Runner.run spec in
  Printf.printf
    "axpby from text: %d cycles, %.1f%% FPU utilisation, max |err| = %g\n"
    r.Mlc.Runner.metrics.cycles r.Mlc.Runner.metrics.fpu_util
    r.Mlc.Runner.max_abs_err;
  (* fma contraction changes rounding vs the interpreter's mul+add *)
  assert (r.Mlc.Runner.max_abs_err < 1e-12);
  print_endline "ok."
