(* Define a new micro-kernel against the public linalg API and push it
   through the full pipeline: a row-wise dot product

       out[i] = sum_j x[i,j] * y[i,j]

   which is not part of the paper's suite. The builder produces a
   Builders.spec, so the standard harness (compile, simulate, validate
   against the interpreter) applies unchanged.

     dune exec examples/custom_kernel.exe *)

open Mlc_ir
open Mlc_dialects
open Mlc_kernels

let rowdot ~n ~m () : Builders.spec =
  let elem = Ty.F64 in
  let args =
    [ Builders.Buf_in [ n; m ]; Builders.Buf_in [ n; m ]; Builders.Buf_out [ n ] ]
  in
  {
    Builders.kernel_name = "rowdot";
    fn_name = "rowdot";
    elem;
    args;
    flops = 2 * n * m;
    min_cycles = n * m;
    build =
      (fun () ->
        Builders.module_with_fn ~name:"rowdot" ~args ~elem (fun bb values ->
            match values with
            | [ x; y; out ] ->
              let zero = Arith.const_float bb 0.0 in
              Linalg.fill bb zero out;
              let open Affine in
              let in_map = make ~num_dims:2 ~num_syms:0 [ dim 0; dim 1 ] in
              let out_map = make ~num_dims:2 ~num_syms:0 [ dim 0 ] in
              ignore
                (Linalg.generic bb ~ins:[ x; y ] ~outs:[ out ]
                   ~maps:[ in_map; in_map; out_map ]
                   ~iterators:[ Attr.Parallel; Attr.Reduction ]
                   (fun bb ins outs ->
                     match (ins, outs) with
                     | [ a; b ], [ acc ] ->
                       [ Arith.addf bb acc (Arith.mulf bb a b) ]
                     | _ -> assert false))
            | _ -> assert false));
  }

let () =
  let spec = rowdot ~n:8 ~m:32 () in
  let r = Mlc.Runner.run spec in
  Printf.printf
    "rowdot 8x32: %d cycles, %.1f%% FPU utilisation, %.2f FLOPs/cycle, \
     max |err| = %g\n"
    r.Mlc.Runner.metrics.cycles r.Mlc.Runner.metrics.fpu_util
    r.Mlc.Runner.metrics.flops_per_cycle r.Mlc.Runner.max_abs_err;
  (* The pipeline applied everything the paper describes: check that the
     reduction got unrolled-and-jammed and streams carry the data. *)
  Printf.printf "explicit loads/stores: %d/%d (fused fill made the output \
                 write-only and streamable)\n"
    r.Mlc.Runner.metrics.loads r.Mlc.Runner.metrics.stores;
  assert (r.Mlc.Runner.max_abs_err < 1e-10);
  print_endline "ok."
