(* The paper motivates its kernel suite with two DNNs (§4.1): NsNet2, a
   noise-suppression model built around GRU and fully-connected layers,
   and AlexNet, a classical CNN. This example compiles the per-layer
   micro-kernel workloads those networks induce — scaled to fit the
   single-core 128 KiB TCDM, as the paper's evaluation does — and reports
   aggregate results per network, the way "higher-level tools calling
   into our compiler" (paper §4.4) would schedule them.

     dune exec examples/nsnet2_layers.exe *)

type layer = {
  label : string;
  spec : Mlc_kernels.Builders.spec;
}

(* NsNet2-ish: fully-connected layers (vector x matrix products) with
   ReLU activations; feature dim tiled to TCDM-sized chunks. *)
let nsnet2_layers =
  [
    { label = "fc1  (1x128 . 128x64)"; spec = Mlc_kernels.Builders.matmul ~n:1 ~m:64 ~k:128 () };
    { label = "relu1 (1x64)"; spec = Mlc_kernels.Builders.relu ~n:1 ~m:64 () };
    { label = "gru-gate (1x64 . 64x64)"; spec = Mlc_kernels.Builders.matmul ~n:1 ~m:64 ~k:64 () };
    { label = "gate-sum (1x64)"; spec = Mlc_kernels.Builders.sum ~n:1 ~m:64 () };
    { label = "fc2  (1x64 . 64x32)"; spec = Mlc_kernels.Builders.matmul ~n:1 ~m:32 ~k:64 () };
    { label = "relu2 (1x32)"; spec = Mlc_kernels.Builders.relu ~n:1 ~m:32 () };
  ]

(* AlexNet-ish: convolution + pooling stages on TCDM-sized tiles. *)
let alexnet_layers =
  [
    { label = "conv1 tile (16x16, 3x3)"; spec = Mlc_kernels.Builders.conv3x3 ~n:16 ~m:16 () };
    { label = "relu1 (16x16)"; spec = Mlc_kernels.Builders.relu ~n:16 ~m:16 () };
    { label = "maxpool1 (16x16)"; spec = Mlc_kernels.Builders.max_pool ~n:16 ~m:16 () };
    { label = "conv2 tile (8x32, 3x3)"; spec = Mlc_kernels.Builders.conv3x3 ~n:8 ~m:32 () };
    { label = "relu2 (8x32)"; spec = Mlc_kernels.Builders.relu ~n:8 ~m:32 () };
    { label = "fc tile (4x64 . 64x32)"; spec = Mlc_kernels.Builders.matmul ~n:4 ~m:32 ~k:64 () };
  ]

let run_network name layers =
  Printf.printf "\n%s\n%s\n" name (String.make (String.length name) '-');
  Printf.printf "%-26s %9s %9s %11s\n" "layer" "cycles" "FLOPs" "FPU util %";
  let total_cycles = ref 0 and total_flops = ref 0 in
  List.iter
    (fun { label; spec } ->
      let r = Mlc.Runner.run spec in
      assert (r.Mlc.Runner.max_abs_err < 1e-9);
      total_cycles := !total_cycles + r.Mlc.Runner.metrics.cycles;
      total_flops := !total_flops + r.Mlc.Runner.metrics.flop_count;
      Printf.printf "%-26s %9d %9d %10.1f\n" label r.Mlc.Runner.metrics.cycles
        r.Mlc.Runner.metrics.flop_count r.Mlc.Runner.metrics.fpu_util)
    layers;
  Printf.printf "%-26s %9d %9d %10.2f FLOPs/cycle overall\n" "TOTAL"
    !total_cycles !total_flops
    (float_of_int !total_flops /. float_of_int !total_cycles)

let () =
  run_network "NsNet2 (noise suppression, per-frame tile)" nsnet2_layers;
  run_network "AlexNet (image classification, per-tile)" alexnet_layers;
  print_endline "\nEvery layer validated against the reference interpreter. ok."
