(* Extending the backend (paper §3.2: "Our modular approach makes it easy
   to extend backends"): register a new high-level operation in its own
   dialect, give it a verifier, and lower it with a peephole rewrite into
   existing abstractions — all without touching the core libraries.

   The op: myext.clamp(x, lo, hi) = min(max(x, lo), hi), a common NN
   activation primitive. After one rewrite it is ordinary arith code and
   the whole existing pipeline (streams, FREP, allocation) applies.

     dune exec examples/dialect_extension.exe *)

open Mlc_ir
open Mlc_dialects

(* 1. Register the op with its invariants; one line per fact. *)
let clamp_op =
  Op_registry.register "myext.clamp" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 3;
      Op_registry.expect_num_results op 1;
      let t = Ir.Value.ty (Ir.Op.operand op 0) in
      if not (Ty.is_float t) then
        Op_registry.fail_op op "clamp operates on floating-point values")

let clamp bb x lo hi =
  Builder.create1 bb ~result:(Ir.Value.ty x) clamp_op [ x; lo; hi ]

(* 2. A rewrite pattern lowering it into the existing arith dialect. *)
let lower_clamp =
  Rewriter.pattern "lower-myext-clamp" (fun b op ->
      if Ir.Op.name op <> clamp_op then Rewriter.Declined
      else begin
        let x = Ir.Op.operand op 0
        and lo = Ir.Op.operand op 1
        and hi = Ir.Op.operand op 2 in
        let clamped = Arith.minf b (Arith.maxf b x lo) hi in
        Rewriter.replace_op op [ clamped ];
        Rewriter.Applied
      end)

let lower_clamp_pass =
  Pass.make "lower-myext" (fun m -> ignore (Rewriter.rewrite_greedy m [ lower_clamp ]))

(* 3. A kernel using the new op, exactly like any suite kernel. *)
let clamp_kernel ~n ~m () : Mlc_kernels.Builders.spec =
  let open Mlc_kernels in
  let args = [ Builders.Buf_in [ n; m ]; Builders.Buf_out [ n; m ] ] in
  {
    Builders.kernel_name = "clamp6";
    fn_name = "clamp6";
    elem = Ty.F64;
    args;
    flops = 2 * n * m;
    min_cycles = 2 * n * m;
    build =
      (fun () ->
        Builders.module_with_fn ~name:"clamp6" ~args ~elem:Ty.F64
          (fun bb values ->
            match values with
            | [ x; y ] ->
              (* ReLU6: clamp(x, 0, 6) *)
              let lo = Arith.const_float bb 0.0 in
              let hi = Arith.const_float bb 6.0 in
              let id = Affine.identity 2 in
              ignore
                (Linalg.generic bb ~ins:[ x; lo; hi ] ~outs:[ y ]
                   ~maps:[ id; Affine.empty 2; Affine.empty 2; id ]
                   ~iterators:[ Attr.Parallel; Attr.Parallel ]
                   (fun bb ins _ ->
                     match ins with
                     | [ v; l; h ] -> [ clamp bb v l h ]
                     | _ -> assert false))
            | _ -> assert false));
  }

(* The interpreter does not know myext.clamp, so lower it before the
   reference run by prepending our pass to the module build. *)
let () =
  let spec = clamp_kernel ~n:16 ~m:16 () in
  let lowered_spec =
    {
      spec with
      Mlc_kernels.Builders.build =
        (fun () ->
          let m = spec.Mlc_kernels.Builders.build () in
          Pass.run m [ lower_clamp_pass ];
          m);
    }
  in
  let r = Mlc.Runner.run lowered_spec in
  Printf.printf
    "clamp6 (ReLU6) via a user-registered dialect op: %d cycles, %.1f%% FPU \
     utilisation, max |err| = %g\n"
    r.Mlc.Runner.metrics.cycles r.Mlc.Runner.metrics.fpu_util
    r.Mlc.Runner.max_abs_err;
  assert (r.Mlc.Runner.max_abs_err = 0.0);
  print_endline "ok."
