(* Writing a micro-kernel directly in the assembly-level dialects (paper
   §4.2 / RQ1): a dot product z = sum_i x[i] * y[i] over f64 data,
   expressed with snitch_stream + rv_snitch + rv in partially
   register-allocated form. Only the ABI registers are fixed; the
   spill-free allocator places everything else.

     dune exec examples/lowlevel_kernel.exe *)

open Mlc_ir
open Mlc_riscv

let n = 256

let build_dot () =
  let m = Mlc_dialects.Builtin.create_module () in
  let b = Builder.at_end (Mlc_dialects.Builtin.module_body m) in
  (* dot(x: a0, y: a1, z: a2) with z a single-element output buffer. *)
  let _fn, entry =
    Rv_func.func b ~name:"dot" ~args:[ Reg.Int_kind; Reg.Int_kind; Reg.Int_kind ]
  in
  let bb = Builder.at_end entry in
  match Ir.Block.args entry with
  | [ x; y; z ] ->
    let pattern = { Attr.ub = [ n ]; strides = [ 8 ] } in
    ignore
      (Snitch_stream.streaming_region bb ~patterns:[ pattern; pattern ]
         ~ins:[ x; y ] ~outs:[] (fun bb streams ->
           match streams with
           | [ sx; sy ] ->
             let zero = Rv.fcvt_d_w bb (Rv.get_register bb "zero") in
             (* Four accumulator chains hide the 3-stage FPU latency
                (paper §3.4), reduced after the hardware loop. *)
             let accs = List.init 4 (fun _ -> Rv.fmv_d bb zero) in
             let rpt = Rv.li bb ((n / 4) - 1) in
             let frep =
               Rv_snitch.frep_outer bb ~rpt ~iter_args:accs (fun fb accs ->
                   List.map
                     (fun acc ->
                       let a = Rv_snitch.read fb sx in
                       let b = Rv_snitch.read fb sy in
                       Rv.fternary fb Rv.fmadd_d_op a b acc)
                     accs)
             in
             let total =
               match Ir.Op.results frep with
               | [ a0; a1; a2; a3 ] ->
                 let s01 = Rv.fbinary bb Rv.fadd_d_op a0 a1 in
                 let s23 = Rv.fbinary bb Rv.fadd_d_op a2 a3 in
                 Rv.fbinary bb Rv.fadd_d_op s01 s23
               | _ -> assert false
             in
             Rv.fstore bb Rv.fsd_op total z
           | _ -> assert false));
    Rv_func.return_ bb [];
    m
  | _ -> assert false

let () =
  let m = build_dot () in
  Verifier.verify m;
  (* Lower the streaming region, allocate registers, emit assembly. *)
  Mlc_ir.Pass.run m
    [
      Mlc_transforms.Lower_snitch_stream.pass;
      Mlc_transforms.Rv_canonicalize.pass;
      Mlc_transforms.Legalize_stream_writes.pass;
    ];
  let fn = Option.get (Rv_func.lookup m "dot") in
  let report = Mlc_regalloc.Allocator.allocate_func fn in
  let asm = Asm_emit.emit_module m in
  print_string asm;
  Printf.printf "\nregisters: %d/20 FP, %d/15 integer (spill-free)\n"
    report.Mlc_regalloc.Allocator.fp_count report.Mlc_regalloc.Allocator.int_count;

  (* Execute on the simulator and validate against OCaml. *)
  let program = Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm) in
  let machine = Mlc_sim.Machine.create () in
  let base = Mlc_sim.Mem.tcdm_base in
  let xs = Array.init n (fun i -> Float.of_int (i mod 7) /. 3.0) in
  let ys = Array.init n (fun i -> Float.of_int ((i * 5) mod 11) /. 4.0) in
  Array.iteri (fun i v -> Mlc_sim.Mem.store_f64 machine.Mlc_sim.Machine.mem (base + (8 * i)) v) xs;
  Array.iteri
    (fun i v -> Mlc_sim.Mem.store_f64 machine.Mlc_sim.Machine.mem (base + 4096 + (8 * i)) v)
    ys;
  Mlc_sim.Machine.set_ireg machine 10 (Int64.of_int base);
  Mlc_sim.Machine.set_ireg machine 11 (Int64.of_int (base + 4096));
  Mlc_sim.Machine.set_ireg machine 12 (Int64.of_int (base + 8192));
  let outcome = Mlc_sim.Machine.run machine program ~entry:"dot" in
  let got = Mlc_sim.Mem.load_f64 machine.Mlc_sim.Machine.mem (base + 8192) in
  (* Reference mirrors the 4-chain accumulation order. *)
  let chains = Array.make 4 0.0 in
  for i = 0 to (n / 4) - 1 do
    for c = 0 to 3 do
      let j = (i * 4) + c in
      chains.(c) <- Float.fma xs.(j) ys.(j) chains.(c)
    done
  done;
  let expected = chains.(0) +. chains.(1) +. (chains.(2) +. chains.(3)) in
  Printf.printf "dot product: got %.12g, expected %.12g\n" got expected;
  Printf.printf "cycles: %d for %d FMAs (%.1f%% FPU utilisation)\n"
    outcome.Mlc_sim.Machine.perf.Mlc_sim.Machine.cycles n
    (Mlc_sim.Machine.utilization outcome.Mlc_sim.Machine.perf);
  assert (got = expected);
  print_endline "ok."
