(* Shape-sweep study, in the spirit of paper Figure 11: sustained MatMul
   throughput across inner-dimension and output-width sizes. The paper
   notes that "these trends should be taken into account by higher-level
   tools calling into our compiler when distributing larger workloads
   between Snitch cores" — this example computes exactly that guidance:
   the smallest shape reaching 90% of peak.

     dune exec examples/matmul_sweep.exe *)

let () =
  let peak = 2.0 in
  let cols = [ 4; 8; 16; 32 ] in
  let inners = [ 8; 16; 32; 64; 128 ] in
  Printf.printf "MatMul (N = 1) sustained throughput, FLOPs/cycle (peak %.1f)\n\n" peak;
  Printf.printf "%8s |" "K \\ M";
  List.iter (fun m -> Printf.printf " %6d" m) cols;
  print_newline ();
  let first_good = ref None in
  List.iter
    (fun k ->
      Printf.printf "%8d |" k;
      List.iter
        (fun m ->
          let spec = Mlc_kernels.Builders.matmul ~n:1 ~m ~k () in
          let r = Mlc.Runner.run spec in
          let thr = r.Mlc.Runner.metrics.flops_per_cycle in
          if thr >= 0.9 *. peak && !first_good = None then
            first_good := Some (k, m, thr);
          Printf.printf " %6.2f" thr)
        cols;
      print_newline ())
    inners;
  (match !first_good with
  | Some (k, m, thr) ->
    Printf.printf
      "\nGuidance: distribute work in tiles of at least K=%d x M=%d per core \
       (%.2f FLOPs/cycle >= 90%% of peak).\n"
      k m thr
  | None -> print_endline "\nNo shape in this sweep reached 90% of peak.")
