(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 4) on the simulated Snitch target, and
   registers one Bechamel wall-clock benchmark per table/figure for the
   host-side cost of regenerating it.

   Sections (see DESIGN.md per-experiment index):
     table1 - kernel suite characteristics
     fig9   - low-level (handwritten, f32 packed SIMD) kernel performance
     table2 - spill-free register allocation across the suite
     fig10  - end-to-end FPU utilisation: ours vs MLIR vs Clang flows
     fig11  - 64-bit MatMul throughput sweep (M = 1 in the paper's
              notation: a vector times a matrix)
     table3 - cumulative optimisation ablation on MatMul 1x200 * 200x5

   Absolute cycle counts come from our cycle-approximate simulator, so
   they differ from the paper's RTL numbers by small constants; the
   comparisons, trends and crossovers are the reproduction target
   (EXPERIMENTS.md records both).

   Flags:
     --json      write BENCH_PR10.json with per-section host wall-clock,
                 simulated-cycle tallies and compile/load/sim phase
                 breakdown, the fig11 fast-path speedup, the Bechamel
                 estimates, and the jobs/wall-time/cache counters of
                 this run
     --serve     additionally benchmark the snitchd serving path: an
                 in-process daemon floods itself with the chaos
                 driver's mixed workload, then replays it to measure
                 the idempotent warm path; adds a "serving" section to
                 the JSON artifact
     --phases    print a per-section host-time phase table (compile =
                 pass pipeline + regalloc + emission + lint, load =
                 program construction, sim = simulation + readback,
                 other = reference interpreter + driver overhead)
     --smoke     reduced sweep, no ablations/Bechamel (CI smoke test)
     -j N, --jobs N
                 worker domains for the per-cell parallel sections
                 (fig10, fig11); default one per core. Output is
                 byte-identical for any job count.
     --no-cache  disable the on-disk compile-artifact cache tier
                 (default: .mlc-cache). Cached artifacts are
                 content-addressed, so warm runs recompile nothing and
                 report bit-identical simulated cycles. *)

open Mlc_transforms

let section title =
  Printf.printf "\n==================== %s ====================\n" title

(* --- instrumentation: per-section host wall-clock + simulated cycles ---

   Sections run their kernels through these wrappers so that `timed` can
   attribute both host seconds and simulated cycles to each section. *)

let sim_cycles = ref 0

(* (kernel, rung that finally succeeded) for every run that had to fall
   back along the degradation lattice. Expected empty on the golden
   suite; surfaced in the --json artifact so CI can assert that. *)
let degradations : (string * string) list ref = ref []

(* Fold one finished run into the global tallies. Only ever called on
   the main domain — parallel sections return their runs' results and
   commit them here in submission order, so the tallies (and any output
   derived from them) match a sequential run exactly. *)
let tally (spec : Mlc_kernels.Builders.spec) (r : Mlc.Runner.run_result) =
  sim_cycles := !sim_cycles + r.Mlc.Runner.metrics.cycles;
  match r.Mlc.Runner.degradation with
  | Some d ->
    degradations :=
      (spec.Mlc_kernels.Builders.kernel_name, d.Mlc.Runner.rung)
      :: !degradations
  | None -> ()

let run ?flags ?allocator spec =
  let r = Mlc.Runner.run ?flags ?allocator spec in
  tally spec r;
  r

let run_lowlevel spec =
  let r = Mlc.Runner.run_lowlevel spec in
  sim_cycles := !sim_cycles + r.Mlc.Runner.metrics.cycles;
  r

(* Per-section host wall seconds, simulated cycles, and harness phase
   deltas (Runner's process-wide totals snapshotted across the
   section), in execution order. *)
type section_timing = {
  s_name : string;
  s_wall : float;
  s_cycles : int;
  s_phases : Mlc.Runner.phase_totals;
}

let timings : section_timing list ref = ref []

let timed name f =
  let c0 = !sim_cycles in
  let p0 = Mlc.Runner.phases () in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let p1 = Mlc.Runner.phases () in
  timings :=
    {
      s_name = name;
      s_wall = dt;
      s_cycles = !sim_cycles - c0;
      s_phases = Mlc.Runner.sub_phases p1 p0;
    }
    :: !timings;
  x

(* The --phases table: where each section's host time actually went.
   "other" is the remainder — reference interpretation on cold reps,
   input generation, printing, pool scheduling. *)
let print_phase_table () =
  section "Host-time phase breakdown (--phases)";
  Printf.printf "%-20s %9s %9s %9s %9s %9s\n" "Section" "wall s" "compile s"
    "load s" "sim s" "other s";
  List.iter
    (fun s ->
      let p = s.s_phases in
      let attributed =
        p.Mlc.Runner.compile_s +. p.Mlc.Runner.load_s +. p.Mlc.Runner.sim_s
      in
      Printf.printf "%-20s %9.4f %9.4f %9.4f %9.4f %9.4f\n" s.s_name s.s_wall
        p.Mlc.Runner.compile_s p.Mlc.Runner.load_s p.Mlc.Runner.sim_s
        (Float.max 0.0 (s.s_wall -. attributed)))
    (List.rev !timings)

(* --- Table 1 --- *)

let table1 () =
  section "Table 1: kernel suite";
  Printf.printf "%-14s %-50s %-14s %s\n" "Kernel" "Characteristics" "Input Shapes"
    "FLOPs";
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      Printf.printf "%-14s %-50s %-14s %s\n" e.name
        (String.concat ", " e.characteristics)
        e.input_shapes e.flops_formula)
    Mlc_kernels.Registry.table1

(* --- Figure 9 --- *)

let fig9 () =
  section "Figure 9: low-level micro-kernel representations (f32 packed SIMD)";
  Printf.printf "%-10s %-10s %9s %12s %12s %10s\n" "Kernel" "Shape" "Cycles"
    "FPU util %" "FLOPs/cycle" "Overhead";
  let run name shape spec =
    let r = run_lowlevel spec in
    assert (r.Mlc.Runner.max_abs_err = 0.0);
    Printf.printf "%-10s %-10s %9d %12.1f %12.2f %10d\n" name shape
      r.Mlc.Runner.metrics.cycles r.Mlc.Runner.metrics.fpu_util
      r.Mlc.Runner.metrics.flops_per_cycle
      (r.Mlc.Runner.metrics.cycles - spec.Mlc_kernels.Lowlevel.min_cycles)
  in
  List.iter
    (fun (n, m) ->
      let shape = Printf.sprintf "%dx%d" n m in
      run "Sum" shape (Mlc_kernels.Lowlevel.sum32 ~n ~m ());
      run "ReLU" shape (Mlc_kernels.Lowlevel.relu32 ~n ~m ()))
    [ (16, 16); (32, 32); (48, 48); (64, 64); (96, 96) ];
  List.iter
    (fun (n, m, k) ->
      run "MatMulT"
        (Printf.sprintf "%dx%dx%d" n m k)
        (Mlc_kernels.Lowlevel.matmul_t32 ~n ~m ~k ()))
    [ (4, 16, 16); (4, 16, 32); (8, 16, 32); (8, 32, 32); (8, 32, 64) ]

(* --- Table 2 --- *)

let table2 () =
  section "Table 2: spill-free register allocation";
  Printf.printf "%-14s %-10s %-12s %8s %8s\n" "Kernel" "Precision" "Shape" "FP"
    "Integer";
  let compiled name ~n ~m ~k () =
    let entry = Option.get (Mlc_kernels.Registry.by_short_name name) in
    let spec = entry.Mlc_kernels.Registry.instantiate ~n ~m ~k () in
    let r = run spec in
    let rep = Option.get r.Mlc.Runner.report in
    Printf.printf "%-14s %-10s %-12s %5d/20 %5d/15\n"
      entry.Mlc_kernels.Registry.name "64"
      (Printf.sprintf "%dx%dx%d" n m k)
      rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
  in
  compiled "fill" ~n:4 ~m:4 ~k:0 ();
  compiled "relu" ~n:4 ~m:4 ~k:0 ();
  compiled "sum" ~n:4 ~m:4 ~k:0 ();
  compiled "max_pool" ~n:4 ~m:4 ~k:0 ();
  compiled "sum_pool" ~n:4 ~m:4 ~k:0 ();
  compiled "conv3x3" ~n:4 ~m:4 ~k:0 ();
  compiled "matmul" ~n:4 ~m:16 ~k:8 ();
  let handwritten name spec shape =
    let r = run_lowlevel spec in
    let rep = Option.get r.Mlc.Runner.report in
    Printf.printf "%-14s %-10s %-12s %5d/20 %5d/15\n" name "32" shape
      rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
  in
  handwritten "ReLU" (Mlc_kernels.Lowlevel.relu32 ~n:4 ~m:8 ()) "4x8";
  handwritten "Sum" (Mlc_kernels.Lowlevel.sum32 ~n:4 ~m:8 ()) "4x8";
  handwritten "MatMulT" (Mlc_kernels.Lowlevel.matmul_t32 ~n:4 ~m:16 ~k:16 ()) "4x16x16"

(* --- Figure 10 --- *)

let fig10 ~pool () =
  section "Figure 10: FPU utilisation, prototype compiler vs MLIR vs Clang vs RVV";
  (* The three paper flows target Snitch; the fourth column reruns the
     "ours" schedule through the RVV backend (same front half, vector
     lowering instead of SSR/FREP) as the retargetability check. *)
  let flows =
    [
      ("ours", Pipeline.ours, Backend.snitch);
      ("mlir", Pipeline.mlir, Backend.snitch);
      ("clang", Pipeline.clang, Backend.snitch);
      ("rvv", Pipeline.ours, Backend.rvv);
    ]
  in
  Printf.printf "%-10s %-10s %10s %10s %10s %10s\n" "Kernel" "Shape" "ours %"
    "mlir %" "clang %" "rvv %";
  (* One pool item per kernel x shape cell; workers run the three flows
     and return the results, the main domain prints and tallies in cell
     order. *)
  let cells =
    List.concat_map
      (fun (e : Mlc_kernels.Registry.entry) ->
        List.map
          (fun shape -> (e, shape))
          [ (4, 8, 8); (8, 16, 16); (16, 32, 32); (16, 64, 32) ])
      Mlc_kernels.Registry.table1
  in
  let rows =
    (* Cells are sub-millisecond once the compile cache is warm; batch
       one kernel's four shapes per pool work item so the queue round
       trip amortises over the kernel, not each cell. *)
    Mlc_parallel.Pool.map ~batch:4 pool
      (fun ((e : Mlc_kernels.Registry.entry), (n, m, k)) ->
        let row =
          List.map
            (fun (_, flags, backend) ->
              let spec = e.Mlc_kernels.Registry.instantiate ~n ~m ~k () in
              let r = Mlc.Runner.run ~flags ~backend spec in
              assert (r.Mlc.Runner.max_abs_err < 1e-6);
              (spec, r))
            flows
        in
        (* Phase attribution accrued on this worker domain travels with
           the result and is committed in the ordered loop below. *)
        (row, Mlc.Runner.drain_phases ()))
      cells
  in
  List.iter2
    (fun ((e : Mlc_kernels.Registry.entry), (n, m, k)) (row, ph) ->
      Mlc.Runner.commit_phases ph;
      List.iter (fun (spec, r) -> tally spec r) row;
      match List.map (fun (_, r) -> r.Mlc.Runner.metrics.fpu_util) row with
      | [ a; b; c; d ] ->
        Printf.printf "%-10s %-10s %10.1f %10.1f %10.1f %10.1f\n"
          e.Mlc_kernels.Registry.name
          (Printf.sprintf "%dx%dx%d" n m k)
          a b c d
      | _ -> assert false)
    cells rows

(* --- Figure 11 --- *)

let fig11 ~pool ~cols ~inners () =
  section "Figure 11: 64-bit MatMul throughput (FLOPs/cycle), N = 1";
  Printf.printf "%8s |" "K \\ M";
  List.iter (fun m -> Printf.printf " %6d" m) cols;
  Printf.printf "\n%s-+%s\n" (String.make 8 '-')
    (String.make (7 * List.length cols) '-');
  let cells = List.concat_map (fun k -> List.map (fun m -> (k, m)) cols) inners in
  let results =
    (* One inner-dimension row (all M columns) per pool work item. *)
    Mlc_parallel.Pool.map ~batch:(List.length cols) pool
      (fun (k, m) ->
        (* All buffers must fit the 128 KiB TCDM (paper §4.1). *)
        let r =
          if 8 * ((k * m) + k + m) > 110 * 1024 then None
          else begin
            let spec = Mlc_kernels.Builders.matmul ~n:1 ~m ~k () in
            Some (spec, Mlc.Runner.run spec)
          end
        in
        (r, Mlc.Runner.drain_phases ()))
      cells
  in
  let by_cell = Hashtbl.create 64 in
  List.iter2
    (fun cell (r, ph) ->
      Mlc.Runner.commit_phases ph;
      Hashtbl.replace by_cell cell r)
    cells results;
  List.iter
    (fun k ->
      Printf.printf "%8d |" k;
      List.iter
        (fun m ->
          match Hashtbl.find by_cell (k, m) with
          | None -> Printf.printf " %6s" "-"
          | Some (spec, r) ->
            tally spec r;
            Printf.printf " %6.2f" r.Mlc.Runner.metrics.flops_per_cycle)
        cols;
      print_newline ())
    inners;
  Printf.printf "(theoretical peak 2.00; the paper's >=90%% band is >=1.80)\n"

(* --- Cluster: parallel tiling across cores (ISSUE 7) ---

   The fig10 matmul shapes (and, in full runs, a fig11-class M=1 shape
   that row-partitioning cannot split — reported honestly at 1 active
   core) through the scf.forall lowering at 1, 2 and 8 cores. The
   makespans come from the banked-TCDM cluster simulation with DMA
   double-buffering; outputs are asserted bit-identical across core
   counts before anything is reported. *)

type cluster_row = {
  cl_kernel : string;
  cl_shape : string;
  cl_cores : int list;
  cl_makespan : int list;
  cl_speedup8 : float; (* makespan at 1 core / makespan at 8 cores *)
  cl_util8 : float array; (* per-core utilisation at 8 cores, percent *)
}

let cluster_rows : cluster_row list ref = ref []

let cluster ~smoke () =
  section "Cluster: parallel tiling across cores (fig10/fig11 shapes)";
  let core_counts = [ 1; 2; 8 ] in
  Printf.printf "%-10s %-10s %10s %10s %10s %9s %8s\n" "Kernel" "Shape"
    "1-core" "2-core" "8-core" "speedup" "util8 %";
  let shapes =
    List.map (fun s -> ("matmul", s)) [ (4, 8, 8); (8, 16, 16); (16, 32, 32); (16, 64, 32) ]
    @ if smoke then [] else [ ("matmul", (1, 64, 64)) ]
  in
  List.iter
    (fun (kernel, (n, m, k)) ->
      let runs =
        List.map
          (fun cores ->
            let spec = Mlc_kernels.Builders.matmul ~n ~m ~k () in
            let r = Mlc.Runner.run_cluster ~cores spec in
            assert (r.Mlc.Runner.c_max_abs_err < 1e-9);
            r)
          core_counts
      in
      (* Bit-identity across core counts is the determinism contract. *)
      let bits r =
        List.map
          (Array.map Int64.bits_of_float)
          r.Mlc.Runner.c_outputs
      in
      let b0 = bits (List.hd runs) in
      List.iter (fun r -> assert (bits r = b0)) runs;
      let makespans = List.map (fun r -> r.Mlc.Runner.c_makespan) runs in
      List.iter
        (fun r -> sim_cycles := !sim_cycles + r.Mlc.Runner.c_makespan)
        runs;
      let r8 = List.nth runs 2 in
      let speedup =
        float_of_int (List.hd makespans)
        /. float_of_int r8.Mlc.Runner.c_makespan
      in
      let util8 = r8.Mlc.Runner.c_util in
      let mean_util8 =
        let active = r8.Mlc.Runner.c_active in
        Array.fold_left ( +. ) 0.0 (Array.sub util8 0 active)
        /. float_of_int active
      in
      (match makespans with
      | [ m1; m2; m8 ] ->
        Printf.printf "%-10s %-10s %10d %10d %10d %8.2fx %8.1f\n" kernel
          (Printf.sprintf "%dx%dx%d" n m k)
          m1 m2 m8 speedup mean_util8
      | _ -> assert false);
      cluster_rows :=
        {
          cl_kernel = kernel;
          cl_shape = Printf.sprintf "%dx%dx%d" n m k;
          cl_cores = core_counts;
          cl_makespan = makespans;
          cl_speedup8 = speedup;
          cl_util8 = util8;
        }
        :: !cluster_rows)
    shapes;
  cluster_rows := List.rev !cluster_rows

(* --- Table 3 --- *)

let table3 () =
  section "Table 3: optimisation ablation, MatMul 1x200 * 200x5 (f64)";
  Printf.printf "%-22s %5s %5s %7s %7s %6s %5s %9s %10s\n" "Optimizations" "FP"
    "Int" "Loads" "Stores" "FMAdd" "FRep" "Cycles" "Occupancy";
  List.iter
    (fun (name, flags) ->
      let spec = Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:200 () in
      let r = run ~flags spec in
      assert (r.Mlc.Runner.max_abs_err < 1e-9);
      let rep = Option.get r.Mlc.Runner.report in
      let st = Option.get r.Mlc.Runner.stats in
      let mt = r.Mlc.Runner.metrics in
      Printf.printf "%-22s %2d/20 %2d/15 %7d %7d %6d %5d %9d %9.2f%%\n" name
        rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
        mt.Mlc.Runner.loads mt.Mlc.Runner.stores
        (mt.Mlc.Runner.flop_count / 2)
        st.Mlc_riscv.Asm_emit.frep mt.Mlc.Runner.cycles mt.Mlc.Runner.fpu_util)
    Pipeline.ablation_stages

(* --- Ablation: the cost of spilling (design-choice study) ---

   The paper's central register-allocation claim (§3.3): spill-free
   structured allocation suits micro-kernels, while classical best-effort
   allocation with spilling pays memory traffic. We compare the
   structured allocator against a classical linear scan on the same
   baseline-flow code, then shrink the linear scan's FP pool to force
   spills and measure the penalty. *)

let spilling_ablation () =
  section "Ablation: spill-free structured allocation vs linear scan";
  Printf.printf "%-10s %-26s %9s %7s %7s %7s
" "Kernel" "Allocator" "Cycles"
    "Loads" "Stores" "Spills";
  let kernels =
    [
      ("conv3x3", fun () -> Mlc_kernels.Builders.conv3x3 ~n:4 ~m:4 ());
      ("matmul", fun () -> Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:8 ());
      ("sum_pool", fun () -> Mlc_kernels.Builders.sum_pool ~n:4 ~m:4 ());
    ]
  in
  List.iter
    (fun (name, mk) ->
      let row alloc_name allocator spills =
        let r = run ~flags:Pipeline.baseline ?allocator (mk ()) in
        assert (r.Mlc.Runner.max_abs_err < 1e-9);
        Printf.printf "%-10s %-26s %9d %7d %7d %7s
" name alloc_name
          r.Mlc.Runner.metrics.cycles r.Mlc.Runner.metrics.loads
          r.Mlc.Runner.metrics.stores (spills ())
      in
      row "structured (spill-free)" None (fun () -> "0");
      let spill_count = ref 0 in
      let lscan ?float_pool fn =
        let res = Mlc_regalloc.Linear_scan.allocate_func ?float_pool fn in
        spill_count := res.Mlc_regalloc.Linear_scan.spilled_classes;
        res.Mlc_regalloc.Linear_scan.report
      in
      spill_count := 0;
      row "linear scan" (Some (lscan ?float_pool:None))
        (fun () -> string_of_int !spill_count);
      spill_count := 0;
      row "linear scan, 2 FP regs"
        (Some (fun fn -> lscan ~float_pool:[ "ft3"; "ft4" ] fn))
        (fun () -> string_of_int !spill_count))
    kernels

(* --- Ablation: stream-pattern optimisations (paper §3.2 d) ---

   The compile-time stride-pattern optimisations — dropping unit bounds,
   collapsing contiguous dimensions, turning a trailing zero-stride
   dimension into the hardware repeat — reduce the accelerator
   configuration code and, for high-rank accesses, decide whether a
   pattern fits the 4-D address generators at all. *)

let pattern_ablation () =
  section "Ablation: stream-pattern optimisations (contiguity + repeat)";
  let count_scfgwi asm =
    List.length
      (List.filter
         (fun line ->
           String.length (String.trim line) >= 6
           && String.sub (String.trim line) 0 6 = "scfgwi")
         (String.split_on_char '\n' asm))
  in
  Printf.printf "%-10s %-14s %14s %9s\n" "Kernel" "Patterns" "Config instrs"
    "Cycles";
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun (label, pattern_opt) ->
          let flags = { Pipeline.ours with Pipeline.pattern_opt } in
          match run ~flags (mk ()) with
          | r ->
            assert (r.Mlc.Runner.max_abs_err < 1e-9);
            Printf.printf "%-10s %-14s %14d %9d\n" name label
              (count_scfgwi r.Mlc.Runner.asm)
              r.Mlc.Runner.metrics.cycles
          | exception _ ->
            Printf.printf "%-10s %-14s %14s %9s  (pattern exceeds the 4-D \
                           address generators)\n"
              name label "-" "-")
        [ ("optimised", true); ("raw", false) ])
    [
      ("sum", fun () -> Mlc_kernels.Builders.sum ~n:16 ~m:16 ());
      ("matmul", fun () -> Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:200 ());
      ("conv3x3", fun () -> Mlc_kernels.Builders.conv3x3 ~n:8 ~m:16 ());
    ]

(* --- Bechamel wall-clock benchmarks --- *)

let bechamel_suite () =
  let open Bechamel in
  let compile_and_run flags spec () = ignore (Mlc.Runner.run ~flags spec) in
  let tests =
    Test.make_grouped ~name:"regen"
      [
        Test.make ~name:"table1"
          (Staged.stage (fun () -> ignore (List.length Mlc_kernels.Registry.table1)));
        Test.make ~name:"fig9"
          (Staged.stage (fun () ->
               ignore
                 (Mlc.Runner.run_lowlevel (Mlc_kernels.Lowlevel.sum32 ~n:16 ~m:16 ()))));
        Test.make ~name:"table2"
          (Staged.stage
             (compile_and_run Pipeline.ours
                (Mlc_kernels.Builders.matmul ~n:4 ~m:16 ~k:8 ())));
        Test.make ~name:"fig10"
          (Staged.stage
             (compile_and_run Pipeline.ours (Mlc_kernels.Builders.sum ~n:16 ~m:16 ())));
        Test.make ~name:"fig11"
          (Staged.stage
             (compile_and_run Pipeline.ours
                (Mlc_kernels.Builders.matmul ~n:1 ~m:8 ~k:32 ())));
        Test.make ~name:"table3"
          (Staged.stage
             (compile_and_run Pipeline.baseline
                (Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:50 ())));
      ]
  in
  section "Bechamel: host wall-clock per regeneration unit";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        Printf.printf "%-28s %14.0f ns/run\n" name est;
        Some (name, est)
      | _ ->
        Printf.printf "%-28s (no estimate)\n" name;
        None)
    rows

(* --- fast-path speedup ---

   Host-side cost of getting a compiled kernel onto the simulator and
   through it, over the fig11 sweep shapes:

   - legacy: assembly text -> Asm_parse.parse -> Program.of_asm ->
     reference per-instruction engine (the pre-PR route);
   - fast:   allocated IR -> Insn_emit.emit_module -> fast engine.

   Compilation runs once per cell outside the timed region, and each
   rep's machine is created and loaded with inputs outside it too —
   both are identical for the two routes; the measured quantity is
   load (text round-trip vs direct emission) + simulate, which is what
   the fast path changes. Both routes' counters and outputs are
   asserted identical before timing. *)

let speedup_measurement ~reps ~cols ~inners () =
  section "Fast-path speedup: text+reference engine vs direct+fast engine";
  let cells = ref 0 and legacy = ref 0.0 and fast = ref 0.0 in
  List.iter
    (fun k ->
      List.iter
        (fun m ->
          if 8 * ((k * m) + k + m) <= 110 * 1024 then begin
            incr cells;
            let spec = Mlc_kernels.Builders.matmul ~n:1 ~m ~k () in
            let modl = spec.Mlc_kernels.Builders.build () in
            let compiled =
              Pipeline.compile ~flags:Pipeline.ours ~verify_each:false modl
            in
            let asm = compiled.Pipeline.asm in
            let elem = spec.Mlc_kernels.Builders.elem in
            let args = spec.Mlc_kernels.Builders.args in
            let fn_name = spec.Mlc_kernels.Builders.fn_name in
            let data = Mlc.Runner.gen_inputs ~seed:42 ~elem args in
            let legacy_once () =
              Mlc.Runner.simulate ~engine:Mlc.Runner.Reference ~elem ~fn_name
                ~args ~data asm
            in
            let fast_once () =
              Mlc.Runner.simulate_program ~engine:Mlc.Runner.Fast ~elem
                ~fn_name ~args ~data
                (Mlc_riscv.Insn_emit.emit_module modl)
            in
            let ml, ol, _ = legacy_once () and mf, of_, _ = fast_once () in
            assert (ml = mf);
            assert (Mlc.Runner.max_abs_err ol of_ = 0.0);
            let time_path load_and_run =
              let tot = ref 0.0 in
              for _ = 1 to reps do
                let machine = Mlc_sim.Machine.create () in
                ignore (Mlc.Runner.setup_machine ~elem machine args data);
                let t0 = Unix.gettimeofday () in
                load_and_run machine;
                tot := !tot +. (Unix.gettimeofday () -. t0)
              done;
              !tot
            in
            legacy :=
              !legacy
              +. time_path (fun machine ->
                     let program =
                       Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm)
                     in
                     ignore
                       (Mlc_sim.Machine.run_reference machine program
                          ~entry:fn_name));
            fast :=
              !fast
              +. time_path (fun machine ->
                     let program = Mlc_riscv.Insn_emit.emit_module modl in
                     ignore
                       (Mlc_sim.Block_exec.run machine program ~entry:fn_name))
          end)
        cols)
    inners;
  let speedup = if !fast > 0.0 then !legacy /. !fast else 0.0 in
  Printf.printf
    "%d cells x %d reps: legacy %.4f s, fast %.4f s  ->  %.2fx speedup\n"
    !cells reps !legacy !fast speedup;
  (!cells, !legacy, !fast, speedup)

(* --- the serving path (--serve) --- *)

(* Benchmark snitchd end to end without leaving the process: serve on a
   scratch socket from a spawned domain, drive the chaos harness's
   deterministic flood through real client connections, then replay the
   identical flood to time the idempotent warm path. The replay digest
   must equal the cold digest (the PR 8 exactly-once contract) and its
   compile_n delta must be zero — every artifact comes back from the
   cache or the idempotency table. *)
type serve_timing = {
  sv_requests : int;
  sv_jobs : int;
  sv_cold_wall_s : float;
  sv_warm_wall_s : float;
  sv_retries : int;
  sv_idem_hits : int;
  sv_p50_ms : float;
  sv_p99_ms : float;
  sv_compile_p50_ms : float;
  sv_compile_p99_ms : float;
  sv_warm_compile_n : int;
  sv_digest_match : bool;
}

let serve_timing : serve_timing option ref = ref None

let json_num key body =
  match List.assoc_opt key body with
  | Some (Mlc_serve.Json.Float f) -> f
  | Some (Mlc_serve.Json.Int i) -> float_of_int i
  | _ -> 0.

let serve_section ~jobs ~smoke () =
  section "Serving: snitchd flood (cold + idempotent replay)";
  let count = if smoke then 24 else 120 in
  let socket_path = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench-snitchd-%d.sock" (Unix.getpid ())) in
  let config =
    {
      Mlc_serve.Server.default_config with
      Mlc_serve.Server.socket_path;
      jobs;
    }
  in
  let server = Mlc_serve.Server.create ~config () in
  let server_domain = Domain.spawn (fun () -> Mlc_serve.Server.serve server) in
  let flood () =
    Mlc_serve.Client.flood ~socket_path ~jobs:(max 1 (jobs / 2)) ~seed:11
      ~count ()
  in
  let t0 = Unix.gettimeofday () in
  let cold = flood () in
  let t1 = Unix.gettimeofday () in
  let ph0 = Mlc.Runner.phases () in
  let warm = flood () in
  let t2 = Unix.gettimeofday () in
  let ph1 = Mlc.Runner.phases () in
  let stats = Mlc_serve.Server.stats_body server in
  Mlc_serve.Server.stop server;
  ignore (Domain.join server_domain);
  let timing =
    {
      sv_requests = count;
      sv_jobs = jobs;
      sv_cold_wall_s = t1 -. t0;
      sv_warm_wall_s = t2 -. t1;
      sv_retries =
        cold.Mlc_serve.Client.total_retries
        + warm.Mlc_serve.Client.total_retries;
      sv_idem_hits = int_of_float (json_num "idem_hits" stats);
      sv_p50_ms = json_num "p50_ms" stats;
      sv_p99_ms = json_num "p99_ms" stats;
      sv_compile_p50_ms = json_num "compile_p50_ms" stats;
      sv_compile_p99_ms = json_num "compile_p99_ms" stats;
      sv_warm_compile_n =
        (Mlc.Runner.sub_phases ph1 ph0).Mlc.Runner.compile_n;
      sv_digest_match =
        cold.Mlc_serve.Client.digest = warm.Mlc_serve.Client.digest;
    }
  in
  serve_timing := Some timing;
  Printf.printf
    "%d requests x %d workers: cold %.3f s, idempotent replay %.3f s\n" count
    jobs timing.sv_cold_wall_s timing.sv_warm_wall_s;
  Printf.printf "latency: p50 %.2f ms  p99 %.2f ms  (compile p50 %.2f ms)\n"
    timing.sv_p50_ms timing.sv_p99_ms timing.sv_compile_p50_ms;
  Printf.printf "replay: digests %s, compile_n delta %d, idem hits %d\n"
    (if timing.sv_digest_match then "identical" else "DIFFER")
    timing.sv_warm_compile_n timing.sv_idem_hits;
  assert timing.sv_digest_match;
  assert (timing.sv_warm_compile_n = 0)

(* --- JSON artifact (--json) --- *)

let write_json ~path ~smoke ~reps ~jobs ~cache_enabled ~total_wall ~speedup
    ~bech =
  let cells, legacy_s, fast_s, ratio = speedup in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"bench\": \"PR10\",\n";
  add "  \"smoke\": %b,\n" smoke;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"host_wall_total_s\": %.6f,\n" total_wall;
  add "  \"cache\": {\"enabled\": %b, \"hits\": %d, \"misses\": %d},\n"
    cache_enabled
    (Mlc_parallel.Cache.hits ())
    (Mlc_parallel.Cache.misses ());
  add "  \"sections\": [\n";
  let secs = List.rev !timings in
  List.iteri
    (fun i s ->
      add
        "    {\"name\": %S, \"host_wall_s\": %.6f, \"sim_cycles\": %d, \
         \"compile_s\": %.6f, \"load_s\": %.6f, \"sim_s\": %.6f}%s\n"
        s.s_name s.s_wall s.s_cycles s.s_phases.Mlc.Runner.compile_s
        s.s_phases.Mlc.Runner.load_s s.s_phases.Mlc.Runner.sim_s
        (if i = List.length secs - 1 then "" else ","))
    secs;
  add "  ],\n";
  add "  \"cluster\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"kernel\": %S, \"shape\": %S, \"cores\": [%s], \"makespan\": \
         [%s], \"speedup_8core\": %.3f, \"util_8core\": [%s]}%s\n"
        r.cl_kernel r.cl_shape
        (String.concat ", " (List.map string_of_int r.cl_cores))
        (String.concat ", " (List.map string_of_int r.cl_makespan))
        r.cl_speedup8
        (String.concat ", "
           (List.map (Printf.sprintf "%.1f") (Array.to_list r.cl_util8)))
        (if i = List.length !cluster_rows - 1 then "" else ","))
    !cluster_rows;
  add "  ],\n";
  add "  \"degradations\": [%s],\n"
    (String.concat ", "
       (List.rev_map
          (fun (kernel, rung) ->
            Printf.sprintf "{\"kernel\": %S, \"rung\": %S}" kernel rung)
          !degradations));
  (match !serve_timing with
  | None -> ()
  | Some s ->
    add "  \"serving\": {\n";
    add "    \"requests\": %d,\n" s.sv_requests;
    add "    \"jobs\": %d,\n" s.sv_jobs;
    add "    \"cold_wall_s\": %.6f,\n" s.sv_cold_wall_s;
    add "    \"warm_wall_s\": %.6f,\n" s.sv_warm_wall_s;
    add "    \"retries\": %d,\n" s.sv_retries;
    add "    \"idem_hits\": %d,\n" s.sv_idem_hits;
    add "    \"p50_ms\": %.3f,\n" s.sv_p50_ms;
    add "    \"p99_ms\": %.3f,\n" s.sv_p99_ms;
    add "    \"compile_p50_ms\": %.3f,\n" s.sv_compile_p50_ms;
    add "    \"compile_p99_ms\": %.3f,\n" s.sv_compile_p99_ms;
    add "    \"warm_compile_n\": %d,\n" s.sv_warm_compile_n;
    add "    \"digest_match\": %b\n" s.sv_digest_match;
    add "  },\n");
  add "  \"fig11_speedup\": {\n";
  add "    \"cells\": %d,\n" cells;
  add "    \"reps\": %d,\n" reps;
  add "    \"legacy_load_sim_s\": %.6f,\n" legacy_s;
  add "    \"fast_load_sim_s\": %.6f,\n" fast_s;
  add "    \"speedup\": %.3f\n" ratio;
  add "  },\n";
  add "  \"bechamel_ns_per_run\": {\n";
  List.iteri
    (fun i (name, est) ->
      add "    %S: %.1f%s\n" name est
        (if i = List.length bech - 1 then "" else ","))
    bech;
  add "  }\n";
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  let argv = Array.to_list Sys.argv in
  let json = List.mem "--json" argv in
  let phases = List.mem "--phases" argv in
  let smoke = List.mem "--smoke" argv in
  let jobs =
    let rec find = function
      | ("-j" | "--jobs") :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> n
        | _ ->
          Printf.eprintf "bench: bad --jobs value %S\n" v;
          exit 2)
      | _ :: rest -> find rest
      | [] -> Mlc_parallel.Pool.default_jobs ()
    in
    find argv
  in
  let serve = List.mem "--serve" argv in
  let cache_enabled = not (List.mem "--no-cache" argv) in
  if cache_enabled then Mlc_parallel.Cache.set_disk_dir (Some ".mlc-cache");
  let t_start = Unix.gettimeofday () in
  let pool = Mlc_parallel.Pool.create ~jobs () in
  let cols = if smoke then [ 2; 4 ] else [ 2; 4; 8; 16; 32; 64 ] in
  let inners = if smoke then [ 2; 8 ] else [ 2; 4; 8; 16; 32; 64; 128; 256 ] in
  let reps = if smoke then 2 else 10 in
  timed "table1" table1;
  timed "fig9" fig9;
  timed "table2" table2;
  timed "fig10" (fig10 ~pool);
  timed "fig11" (fig11 ~pool ~cols ~inners);
  timed "table3" table3;
  timed "cluster" (cluster ~smoke);
  if serve then timed "serve" (serve_section ~jobs ~smoke);
  if not smoke then begin
    timed "spilling_ablation" spilling_ablation;
    timed "pattern_ablation" pattern_ablation
  end;
  let speedup = speedup_measurement ~reps ~cols ~inners () in
  Mlc_parallel.Pool.shutdown pool;
  let bech =
    if smoke then []
    else
      try bechamel_suite ()
      with e ->
        Printf.printf "bechamel measurement skipped: %s\n"
          (Printexc.to_string e);
        []
  in
  let total_wall = Unix.gettimeofday () -. t_start in
  if phases then print_phase_table ();
  if json then
    write_json ~path:"BENCH_PR10.json" ~smoke ~reps ~jobs ~cache_enabled
      ~total_wall ~speedup ~bech;
  print_newline ();
  print_endline
    "All evaluation artifacts regenerated; outputs validated against the \
     reference interpreter during the runs above."
