(* Tests for the domain-parallel driver layer (PR 5): deterministic
   pool ordering and error selection, the qcheck property that
   concurrent IR construction never repeats an id, cold-vs-warm compile
   cache bit-identity (memory and disk tiers, including corrupt-entry
   recovery), concurrent crash-bundle de-duplication, and -j4 ≡ -j1
   byte-identity of the fuzz and check drivers. *)

module Pool = Mlc_parallel.Pool
module Cache = Mlc_parallel.Cache
module Fuzz = Mlc_fuzz.Fuzz
module Check_all = Mlc_fuzz.Check_all
module Diag = Mlc_diag.Diag
module Crash_bundle = Mlc_diag.Crash_bundle
module Ir = Mlc_ir.Ir
module Builders = Mlc_kernels.Builders

(* --- pool determinism ------------------------------------------------ *)

let test_pool_ordered () =
  let items = List.init 200 Fun.id in
  let f i = (i * i) + 1 in
  let expect = List.map f items in
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "parallel map is in submission order"
        expect (Pool.map pool f items);
      Alcotest.(check (list int)) "pool is reusable" expect
        (Pool.map pool f items));
  Alcotest.(check (list int)) "jobs=1 runs inline with the same result"
    expect
    (Pool.map_list ~jobs:1 f items)

let test_pool_first_error () =
  let f i = if i >= 100 then failwith (Printf.sprintf "i=%d" i) else i in
  let got =
    try
      ignore (Pool.map_list ~jobs:4 f (List.init 150 Fun.id));
      "no exception"
    with Failure m -> m
  in
  (* Many items fail; the committed exception must be the one a
     sequential left-to-right run would surface first. *)
  Alcotest.(check string) "lowest-index failure wins" "i=100" got

(* --- concurrent IR construction never repeats an id ------------------ *)

let ids_of_module m =
  List.concat_map
    (fun op -> Ir.Op.id op :: List.map Ir.Value.id (Ir.Op.results op))
    (Ir.collect m (fun _ -> true))

let prop_concurrent_ids_unique =
  QCheck.Test.make ~name:"concurrent IR construction never repeats an id"
    ~count:15
    (QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 4))
    (fun m ->
      let build d =
        (* Shape varies per domain and per trial so the builds are not
           lockstep-identical. *)
        let spec = Builders.matmul ~n:2 ~m:(m + d) ~k:3 () in
        ids_of_module (spec.Builders.build ())
      in
      let domains = List.init 4 (fun d -> Domain.spawn (fun () -> build d)) in
      let ids = List.concat_map Domain.join domains in
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun id ->
          if Hashtbl.mem tbl id then
            QCheck.Test.fail_reportf "id %d assigned twice" id;
          Hashtbl.add tbl id ())
        ids;
      true)

(* --- compile cache: cold vs warm bit-identity ------------------------ *)

let spec () = Builders.matmul ~n:2 ~m:4 ~k:4 ()

let test_cache_hit_bit_identical () =
  Cache.set_disk_dir None;
  Cache.clear_memory ();
  Cache.reset_stats ();
  let cold = Mlc.Runner.run (spec ()) in
  let misses_cold = Cache.misses () in
  let warm = Mlc.Runner.run (spec ()) in
  Alcotest.(check bool) "cold run missed" true (misses_cold > 0);
  Alcotest.(check bool) "warm run hit" true (Cache.hits () > 0);
  Alcotest.(check bool) "no extra miss on the warm run" true
    (Cache.misses () = misses_cold);
  (* The whole result record: assembly text, metrics, outputs, allocator
     report, emission stats — bit-identical to the cold compile. *)
  Alcotest.(check bool) "hit result is bit-identical" true (cold = warm)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let test_disk_tier_and_corruption () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-test-cache"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_disk_dir None;
      rm_rf dir)
    (fun () ->
      Cache.set_disk_dir (Some dir);
      Cache.clear_memory ();
      Cache.reset_stats ();
      let cold = Mlc.Runner.run (spec ()) in
      Alcotest.(check bool) "disk tier populated" true
        (Sys.file_exists dir && Array.length (Sys.readdir dir) > 0);
      (* Drop the memory tier: the next run may only hit via disk. *)
      Cache.clear_memory ();
      let hits0 = Cache.hits () in
      let disk_warm = Mlc.Runner.run (spec ()) in
      Alcotest.(check bool) "disk hit recorded" true (Cache.hits () > hits0);
      Alcotest.(check bool) "disk hit is bit-identical" true (cold = disk_warm);
      (* Corrupt every entry: reads must degrade to a silent recompute,
         never an error or a wrong artifact. *)
      Array.iter
        (fun f ->
          let oc = open_out (Filename.concat dir f) in
          output_string oc "not a cache entry";
          close_out oc)
        (Sys.readdir dir);
      Cache.clear_memory ();
      let misses0 = Cache.misses () in
      let recomputed = Mlc.Runner.run (spec ()) in
      Alcotest.(check bool) "corrupt entry is a miss" true
        (Cache.misses () > misses0);
      Alcotest.(check bool) "recompute after corruption is bit-identical" true
        (cold = recomputed);
      (* The corrupt file was quarantined aside (renamed, counted), not
         silently re-read on every subsequent miss. *)
      Alcotest.(check bool) "corrupt entry counted as quarantined" true
        (Cache.quarantined () > 0);
      Alcotest.(check bool) "corrupt entry renamed to .corrupt" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".corrupt")
           (Sys.readdir dir));
      (* The recompute rewrote a valid entry. *)
      Cache.clear_memory ();
      let hits1 = Cache.hits () in
      let repaired = Mlc.Runner.run (spec ()) in
      Alcotest.(check bool) "repaired entry hits again" true
        (Cache.hits () > hits1);
      Alcotest.(check bool) "repaired hit is bit-identical" true
        (cold = repaired))

(* A burst of large artifacts must never leave the directory above the
   size cap: the amortised every-8th-write sweep alone could sit on a
   burst of up to 7 oversized entries, so disk_add also sweeps whenever
   its running byte estimate crosses the cap. The invariant is checked
   after every single write — under the amortised-only behaviour most
   of these writes leave the directory over the cap. *)
let test_burst_respects_cache_cap () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-test-cache-burst"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_eviction ();
      Cache.set_disk_dir None;
      Cache.clear_memory ();
      rm_rf dir)
    (fun () ->
      Cache.set_disk_dir (Some dir);
      Cache.clear_memory ();
      let cap = 64 * 1024 in
      Cache.set_eviction ~max_bytes:cap ();
      let payload = String.make (32 * 1024) 'p' in
      let dir_total () =
        Array.fold_left
          (fun acc f ->
            if Filename.check_suffix f ".bin" then
              acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
            else acc)
          0 (Sys.readdir dir)
      in
      List.iter
        (fun i ->
          let key =
            Cache.key ~namespace:"burst-test" ~version:"v1" [ string_of_int i ]
          in
          Cache.add ~key (payload ^ string_of_int i);
          let total = dir_total () in
          Alcotest.(check bool)
            (Printf.sprintf "after write %d: %d bytes within cap %d" i total
               cap)
            true (total <= cap))
        (List.init 12 Fun.id))

(* --- orphaned temp-file reclamation ---------------------------------- *)

let test_stale_tmp_reclaimed () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-test-cache-orphans"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_disk_dir None;
      rm_rf dir)
    (fun () ->
      Sys.mkdir dir 0o755;
      (* A writer that died between temp-file create and rename leaves
         this behind; back-date it past the reclamation age. *)
      let stale = Filename.concat dir ".deadbeef123.tmp" in
      let oc = open_out stale in
      output_string oc "half-written entry";
      close_out oc;
      let old = Unix.gettimeofday () -. Cache.stale_tmp_age_s () -. 60.0 in
      Unix.utimes stale old old;
      (* A live concurrent writer's in-flight temp (fresh mtime) and a
         committed entry must both survive the sweep. *)
      let fresh = Filename.concat dir ".cafe456.tmp" in
      let oc = open_out fresh in
      output_string oc "in-flight entry";
      close_out oc;
      let committed = Filename.concat dir "0123456789abcdef.bin" in
      let oc = open_out committed in
      output_string oc "committed entry";
      close_out oc;
      Cache.set_disk_dir (Some dir);
      Alcotest.(check bool) "stale orphan reclaimed" false (Sys.file_exists stale);
      Alcotest.(check bool) "fresh temp kept" true (Sys.file_exists fresh);
      Alcotest.(check bool) "committed entry kept" true (Sys.file_exists committed))

(* --- concurrent crash-bundle writes ---------------------------------- *)

let test_crash_bundle_concurrent_dedup () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-test-parallel-bundles"
  in
  rm_rf dir;
  Crash_bundle.set_dir dir;
  let d =
    Diag.make ~pass:"test-parallel" ~op:"test.op" ~component:"bundle"
      "concurrent de-duplication probe"
  in
  let paths = Pool.map_list ~jobs:4 (fun _ -> Crash_bundle.write d) (List.init 8 Fun.id) in
  let path =
    match List.filter_map Fun.id paths with
    | [] -> Alcotest.fail "no bundle written"
    | p :: rest ->
      List.iter
        (Alcotest.(check string) "every writer reports the same bundle" p)
        rest;
      p
  in
  let files = Sys.readdir dir in
  Alcotest.(check int) "exactly one file, no temp litter" 1
    (Array.length files);
  Alcotest.(check string) "bundle content is the rendering of the diag"
    (Crash_bundle.render d)
    (In_channel.with_open_bin path In_channel.input_all);
  (* [last_bundle] is per-domain: the worker writes above must not have
     set this domain's last bundle to [path] (this domain has written
     nothing in this test). *)
  Alcotest.(check bool) "worker writes don't set this domain's last_bundle"
    true
    (Crash_bundle.last_bundle () <> Some path);
  ignore (Crash_bundle.write d);
  Alcotest.(check (option string)) "write on this domain sets last_bundle"
    (Some path)
    (Crash_bundle.last_bundle ());
  rm_rf dir

(* --- fuzz and check drivers: -j4 byte-identical to -j1 --------------- *)

let fuzz_transcript ~jobs =
  let buf = Buffer.create 1024 in
  let r =
    Fuzz.run
      ~log:(fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      ~jobs ~seed:42 ~count:60 ()
  in
  (Buffer.contents buf, r)

let test_fuzz_jobs_identical () =
  let log1, r1 = fuzz_transcript ~jobs:1 in
  let log4, r4 = fuzz_transcript ~jobs:4 in
  Alcotest.(check string) "fuzz transcript is byte-identical" log1 log4;
  Alcotest.(check bool) "fuzz reports are identical" true (r1 = r4)

let test_check_all_jobs_identical () =
  let s1 = Check_all.run_all ~jobs:1 ~n:4 ~m:4 ~k:4 () in
  let s4 = Check_all.run_all ~jobs:4 ~n:4 ~m:4 ~k:4 () in
  Alcotest.(check (list string)) "check findings are byte-identical"
    s1.Check_all.lines s4.Check_all.lines;
  Alcotest.(check int) "same combo count" s1.Check_all.checked
    s4.Check_all.checked;
  Alcotest.(check int) "same error count" s1.Check_all.errors
    s4.Check_all.errors;
  Alcotest.(check bool) "the full matrix is clean" true
    (s1.Check_all.errors = 0 && s1.Check_all.checked > 0)

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool map order" `Quick test_pool_ordered;
        Alcotest.test_case "pool first error" `Quick test_pool_first_error;
        QCheck_alcotest.to_alcotest prop_concurrent_ids_unique;
        Alcotest.test_case "cache hit bit-identical" `Quick
          test_cache_hit_bit_identical;
        Alcotest.test_case "disk tier + corruption" `Quick
          test_disk_tier_and_corruption;
        Alcotest.test_case "burst stays within cache cap" `Quick
          test_burst_respects_cache_cap;
        Alcotest.test_case "stale temp reclaimed" `Quick
          test_stale_tmp_reclaimed;
        Alcotest.test_case "crash bundle concurrent dedup" `Quick
          test_crash_bundle_concurrent_dedup;
        Alcotest.test_case "fuzz -j4 == -j1" `Slow test_fuzz_jobs_identical;
        Alcotest.test_case "check --all -j4 == -j1" `Quick
          test_check_all_jobs_identical;
      ] );
  ]
