(* Tests for the core IR: structure, use-def maintenance, builders,
   verifier, printer/parser round-trip. *)

open Mlc_ir
open Mlc_dialects

let build_simple_fn () =
  (* func @axpy(%a: f64, %x: memref<8xf64>) { ... } *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"axpy" ~args:[ Ty.F64; Ty.memref [ 8 ] Ty.F64 ] ~results:[]
  in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0 and x = Ir.Block.arg entry 1 in
  let zero = Arith.const_index bb 0 in
  let eight = Arith.const_index bb 8 in
  let one = Arith.const_index bb 1 in
  let _for_op =
    Scf.for_ bb ~lb:zero ~ub:eight ~step:one (fun bb iv _ ->
        let v = Memref.load bb x [ iv ] in
        let v' = Arith.mulf bb v a in
        Memref.store bb v' x [ iv ];
        [])
  in
  Func.return_ bb [];
  m

let test_build_and_verify () =
  let m = build_simple_fn () in
  Verifier.verify m;
  Alcotest.(check pass) "verifies" () ()

let test_use_lists () =
  let m = build_simple_fn () in
  let fn = Option.get (Func.lookup m "axpy") in
  let a = Ir.Block.arg (Func.body fn) 0 in
  Alcotest.(check int) "%a used once" 1 (Ir.Value.num_uses a);
  let x = Ir.Block.arg (Func.body fn) 1 in
  Alcotest.(check int) "%x used by load and store" 2 (Ir.Value.num_uses x)

let test_replace_all_uses () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[ Ty.F64; Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let p = Ir.Block.arg entry 0 and q = Ir.Block.arg entry 1 in
  let s = Arith.addf bb p p in
  let _t = Arith.mulf bb s s in
  Func.return_ bb [];
  Ir.replace_all_uses s ~with_:q;
  Alcotest.(check int) "s now unused" 0 (Ir.Value.num_uses s);
  Alcotest.(check int) "q has 2 uses" 2 (Ir.Value.num_uses q);
  Verifier.verify m

let test_erase_requires_no_uses () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[ Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let p = Ir.Block.arg entry 0 in
  let s = Arith.addf bb p p in
  let _t = Arith.mulf bb s s in
  Func.return_ bb [];
  let def = Option.get (Ir.Value.defining_op s) in
  Alcotest.(check bool) "erase with live uses raises" true
    (match Ir.Op.erase def with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_op_order_helpers () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[] ~results:[] in
  let bb = Builder.at_end entry in
  let c1 = Arith.const_index bb 1 in
  let c2 = Arith.const_index bb 2 in
  Func.return_ bb [];
  let op1 = Option.get (Ir.Value.defining_op c1) in
  let op2 = Option.get (Ir.Value.defining_op c2) in
  Alcotest.(check bool) "op1 before op2" true (Ir.Op.is_before ~anchor:op2 op1);
  Alcotest.(check bool) "op2 not before op1" false (Ir.Op.is_before ~anchor:op1 op2)

let test_insert_positions () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[] ~results:[] in
  let bb = Builder.at_end entry in
  let c1 = Arith.const_index bb 1 in
  let c3 = Arith.const_index bb 3 in
  Func.return_ bb [];
  let op3 = Option.get (Ir.Value.defining_op c3) in
  let b2 = Builder.before op3 in
  let _c2 = Arith.const_index b2 2 in
  let names =
    List.map
      (fun op ->
        match Ir.Op.attr op "value" with
        | Some (Attr.Int i) -> string_of_int i
        | _ -> Ir.Op.name op)
      (Ir.Block.ops entry)
  in
  Alcotest.(check (list string)) "program order" [ "1"; "2"; "3"; "func.return" ] names;
  ignore c1;
  Verifier.verify m

let test_verifier_catches_dominance () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[] ~results:[] in
  let bb = Builder.at_end entry in
  let c1 = Arith.const_index bb 1 in
  let c2 = Arith.const_index bb 2 in
  let s = Arith.addi bb c1 c2 in
  Func.return_ bb [];
  (* Move the add before its operands' definitions: dominance violation. *)
  let add_op = Option.get (Ir.Value.defining_op s) in
  let c1_op = Option.get (Ir.Value.defining_op c1) in
  Ir.Op.unlink add_op;
  Ir.Op.insert_before ~anchor:c1_op add_op;
  Alcotest.(check bool) "dominance violation detected" true
    (match Verifier.verify m with
    | exception Verifier.Verification_error _ -> true
    | _ -> false)

let test_verifier_catches_bad_yield_arity () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[ Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let zero = Arith.const_index bb 0 in
  let one = Arith.const_index bb 1 in
  let arg = Ir.Block.arg entry 0 in
  let for_op =
    Scf.for_ bb ~lb:zero ~ub:one ~step:one ~iter_args:[ arg ] (fun _ _ iters ->
        iters)
  in
  Func.return_ bb [];
  (* Break the loop: yield too few values. *)
  let yield = Scf.yield_of for_op in
  Ir.Op.set_operands yield [];
  Alcotest.(check bool) "bad yield detected" true
    (match Verifier.verify m with
    | exception Verifier.Verification_error _ -> true
    | _ -> false)

let test_print_parse_roundtrip () =
  let m = build_simple_fn () in
  let text = Printer.to_string m in
  let m2 = Parser.parse_string text in
  Verifier.verify m2;
  let text2 = Printer.to_string m2 in
  Alcotest.(check string) "roundtrip is stable" text text2

let test_parse_rejects_undefined_value () =
  Alcotest.(check bool) "undefined value rejected" true
    (match Parser.parse_string {|"test.op"(%0) : (f64) -> ()|} with
    | exception Parser.Parse_error _ -> true
    | _ -> false)

let test_parse_types () =
  let roundtrip ty =
    let op = Ir.Op.create ~results:[ ty ] "test.mk" [] in
    let text = Printer.to_string op in
    let op2 = Parser.parse_string text in
    Ty.equal (Ir.Value.ty (Ir.Op.result op2 0)) ty
  in
  List.iter
    (fun ty -> Alcotest.(check bool) (Ty.to_string ty) true (roundtrip ty))
    [
      Ty.F16;
      Ty.F32;
      Ty.F64;
      Ty.i32;
      Ty.Index;
      Ty.memref [ 4; 5 ] Ty.F64;
      Ty.memref [ 200 ] Ty.F32;
      Ty.memref [] Ty.F64;
      Ty.Stream_readable Ty.F64;
      Ty.Stream_writable Ty.F32;
      Ty.Int_reg None;
      Ty.Int_reg (Some "t0");
      Ty.Float_reg (Some "ft3");
    ]

let test_parse_attrs () =
  let roundtrip attrs =
    let op = Ir.Op.create ~attrs ~results:[] "test.mk" [] in
    let text = Printer.to_string op in
    let op2 = Parser.parse_string text in
    List.for_all
      (fun (k, v) ->
        match Ir.Op.attr op2 k with Some v2 -> Attr.equal v v2 | None -> false)
      attrs
  in
  Alcotest.(check bool) "scalar attrs" true
    (roundtrip
       [
         ("a", Attr.Int 42);
         ("b", Attr.Float 1.5);
         ("c", Attr.Str "hello world");
         ("d", Attr.Bool true);
         ("e", Attr.Int (-7));
         ("f", Attr.Float (-2.25));
       ]);
  Alcotest.(check bool) "composite attrs" true
    (roundtrip
       [
         ("arr", Attr.int_arr [ 1; 200; 5 ]);
         ("iters", Attr.Iterators [ Attr.Parallel; Attr.Reduction; Attr.Interleaved ]);
         ( "map",
           Attr.Affine_map
             (Affine.make ~num_dims:3 ~num_syms:0
                [ Affine.(add (mul (dim 0) (const 5)) (dim 2)) ]) );
         ("sp", Attr.Stride_pattern { ub = [ 200; 5 ]; strides = [ 8; 0 ] });
         ( "ip",
           Attr.Index_pattern
             { ip_ub = [ 1; 200; 5 ]; ip_map = Affine.identity 3 } );
         ("ty", Attr.Ty (Ty.memref [ 5; 200 ] Ty.F64));
         ("fty", Attr.Ty (Ty.Func_ty ([ Ty.F64 ], [])));
       ])

let test_walk_collect () =
  let m = build_simple_fn () in
  let loads = Ir.collect m (fun op -> Ir.Op.name op = Memref.load_op) in
  Alcotest.(check int) "one load" 1 (List.length loads);
  let all = Ir.collect m (fun _ -> true) in
  Alcotest.(check bool) "walk sees nested ops" true (List.length all > 6)

let test_rewriter_fixpoint () =
  let m = build_simple_fn () in
  (* Fold (mulf x x) -> x just to exercise the driver (not semantically
     meaningful). *)
  let n =
    Rewriter.rewrite_greedy m
      [
        Rewriter.pattern "collapse-mulf" (fun _b op ->
            if Ir.Op.name op = Arith.mulf_op then begin
              Rewriter.replace_op op [ Ir.Op.operand op 0 ];
              Rewriter.Applied
            end
            else Rewriter.Declined);
      ]
  in
  Alcotest.(check int) "one rewrite" 1 n;
  Alcotest.(check int) "no mulf left" 0
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Arith.mulf_op)))

(* Property: a randomly generated straight-line arith program verifies,
   prints, parses back and reprints identically. *)
let gen_program =
  let open QCheck.Gen in
  list_size (int_range 1 20) (int_bound 4) >|= fun choices ->
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"rand" ~args:[ Ty.F64; Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let vals = ref [ Ir.Block.arg entry 0; Ir.Block.arg entry 1 ] in
  List.iteri
    (fun i c ->
      let pick k = List.nth !vals (k mod List.length !vals) in
      let v =
        match c with
        | 0 -> Arith.addf bb (pick i) (pick (i + 1))
        | 1 -> Arith.mulf bb (pick (i * 3)) (pick i)
        | 2 -> Arith.subf bb (pick i) (pick (2 * i))
        | 3 -> Arith.maxf bb (pick i) (pick (i + 2))
        | _ -> Arith.const_float bb (float_of_int i)
      in
      vals := v :: !vals)
    choices;
  Func.return_ bb [];
  m

let arb_program =
  QCheck.make ~print:(fun m -> Printer.to_string m) gen_program

let prop_random_program_verifies =
  QCheck.Test.make ~name:"random straight-line program verifies" ~count:50
    arb_program (fun m ->
      match Verifier.verify m with () -> true | exception _ -> false)

let prop_roundtrip_stable =
  QCheck.Test.make ~name:"print/parse/print is stable" ~count:50 arb_program
    (fun m ->
      let t1 = Printer.to_string m in
      let m2 = Parser.parse_string t1 in
      String.equal t1 (Printer.to_string m2))

let suite =
  [
    ( "ir",
      [
        Alcotest.test_case "build and verify" `Quick test_build_and_verify;
        Alcotest.test_case "use lists" `Quick test_use_lists;
        Alcotest.test_case "replace all uses" `Quick test_replace_all_uses;
        Alcotest.test_case "erase requires no uses" `Quick test_erase_requires_no_uses;
        Alcotest.test_case "op order" `Quick test_op_order_helpers;
        Alcotest.test_case "insertion positions" `Quick test_insert_positions;
        Alcotest.test_case "verifier: dominance" `Quick test_verifier_catches_dominance;
        Alcotest.test_case "verifier: yield arity" `Quick test_verifier_catches_bad_yield_arity;
        Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
        Alcotest.test_case "parse rejects undefined value" `Quick test_parse_rejects_undefined_value;
        Alcotest.test_case "type roundtrip" `Quick test_parse_types;
        Alcotest.test_case "attr roundtrip" `Quick test_parse_attrs;
        Alcotest.test_case "walk/collect" `Quick test_walk_collect;
        Alcotest.test_case "rewriter fixpoint" `Quick test_rewriter_fixpoint;
        QCheck_alcotest.to_alcotest prop_random_program_verifies;
        QCheck_alcotest.to_alcotest prop_roundtrip_stable;
      ] );
  ]
