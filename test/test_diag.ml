(* Tests for the diagnostics subsystem (PR 3): structured parse errors
   with line:column, pass-failure provenance and crash bundles, the
   runner's graceful-degradation lattice, and the simulator trap model
   (typed traps, identical on both engines). *)

open Mlc_transforms
module Diag = Mlc_diag.Diag
module Crash_bundle = Mlc_diag.Crash_bundle

(* Sandbox every bundle this suite provokes away from the build tree. *)
let bundle_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "mlc-diag-test-bundles"

let () = Crash_bundle.set_dir bundle_dir

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- parser/lexer diagnostics --- *)

let test_parse_error_line_col () =
  (* Valid first line, malformed op on line 2, column of the bad token. *)
  let src = "\"builtin.module\"()({\n^bb0():\n  bogus\n}) : () -> ()\n" in
  match Mlc_ir.Parser.parse_string src with
  | _ -> Alcotest.fail "malformed input accepted"
  | exception Mlc_ir.Parser.Parse_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S carries line 3" msg)
      true
      (String.length msg >= 2 && String.sub msg 0 2 = "3:")

let test_lex_error_line_col () =
  let src = "\"builtin.module\"()({\n^bb0():\n  ?\n}) : () -> ()\n" in
  match Mlc_ir.Parser.parse_string src with
  | _ -> Alcotest.fail "garbage input accepted"
  | exception Mlc_ir.Parser.Parse_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "lex error %S carries line 3" msg)
      true
      (String.length msg >= 2 && String.sub msg 0 2 = "3:")

let test_summary_format () =
  let d =
    Diag.make ~pass:"lower-linalg" ~op:"linalg.generic" ~component:"affine"
      "dropping a used dim"
  in
  Alcotest.(check string)
    "summary format"
    "error[pass=lower-linalg, op=linalg.generic] affine: dropping a used dim"
    (Diag.summary d)

(* --- pass-failure provenance and crash bundles --- *)

let failing_pass = Mlc_ir.Pass.make "explode" (fun _ -> failwith "injected failure")

let test_pass_failure_provenance () =
  Printexc.record_backtrace true;
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  match Mlc_ir.Pass.run m [ failing_pass ] with
  | () -> Alcotest.fail "failing pass succeeded"
  | exception Mlc_ir.Pass.Pass_failed d ->
    Alcotest.(check (option string)) "pass name" (Some "explode") d.Diag.pass;
    Alcotest.(check bool) "IR-before snapshot attached" true
      (match d.Diag.ir_before with Some ir -> String.length ir > 0 | None -> false);
    Alcotest.(check bool) "backtrace recorded" true (d.Diag.backtrace <> None);
    Alcotest.(check bool) "message carries the cause" true
      (contains d.Diag.message "injected failure")

let test_crash_bundle_written () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let ctx =
    { Crash_bundle.flags = Some "test-flags"; replay = Some "snitchc replay-me" }
  in
  (match Mlc_ir.Pass.run ~bundle_ctx:ctx m [ failing_pass ] with
  | () -> Alcotest.fail "failing pass succeeded"
  | exception Mlc_ir.Pass.Pass_failed _ -> ());
  match Crash_bundle.last_bundle () with
  | None -> Alcotest.fail "no crash bundle written"
  | Some path ->
    Alcotest.(check bool) "bundle exists on disk" true (Sys.file_exists path);
    let body = In_channel.with_open_text path In_channel.input_all in
    Alcotest.(check bool) "bundle names the pass" true (contains body "explode");
    Alcotest.(check bool) "bundle has the replay command" true
      (contains body "snitchc replay-me");
    Alcotest.(check bool) "bundle has the flags" true (contains body "test-flags")

let test_bundle_render_sections () =
  let d =
    Diag.make ~pass:"p" ~ir_before:"\"builtin.module\"()" ~component:"pass"
      "boom"
  in
  let ctx = { Crash_bundle.flags = Some "f"; replay = Some "r" } in
  let md = Crash_bundle.render ~ctx d in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "render has %S" needle)
        true (contains md needle))
    [ "# mlc crash bundle"; "## Diagnostic"; "## Replay"; "boom" ]

(* --- the fallback lattice --- *)

let rung_names flags = List.map fst (Pipeline.fallback_lattice flags)

let test_lattice_order () =
  Alcotest.(check (list string))
    "full lattice from ours"
    [ "ours"; "ours-unroll_jam"; "ours-frep-streams"; "baseline" ]
    (rung_names Pipeline.ours);
  Alcotest.(check (list string))
    "baseline is its own lattice" [ "baseline" ]
    (rung_names Pipeline.baseline);
  Alcotest.(check (list string))
    "unknown flags degrade to baseline" [ "custom"; "baseline" ]
    (rung_names { Pipeline.ours with Pipeline.unroll_inner = 4 })

(* Inject a pass failure only at the top rung: the appended pass fails
   whenever unroll_jam is on, so "ours" fails and "ours-unroll_jam" is
   the first clean configuration. *)
let pipeline_failing_when_jam flags =
  Pipeline.passes flags
  @ (if flags.Pipeline.unroll_jam then [ failing_pass ] else [])

let test_degradation_one_rung () =
  let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:8 () in
  let r = Mlc.Runner.run ~pipeline_of:pipeline_failing_when_jam spec in
  (match r.Mlc.Runner.degradation with
  | None -> Alcotest.fail "expected a degradation record"
  | Some d ->
    Alcotest.(check string) "landed one rung down" "ours-unroll_jam"
      d.Mlc.Runner.rung;
    Alcotest.(check (list string))
      "attempt trail" [ "ours" ]
      (List.map fst d.Mlc.Runner.attempts));
  (* The degraded result must be bit-identical to compiling the fallback
     configuration directly: same asm, same outputs. *)
  let direct =
    Mlc.Runner.run
      ~flags:{ Pipeline.ours with Pipeline.unroll_jam = false }
      (Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:8 ())
  in
  Alcotest.(check string) "asm identical to direct fallback compile"
    direct.Mlc.Runner.asm r.Mlc.Runner.asm;
  Alcotest.(check (float 0.0))
    "outputs bit-identical to direct fallback compile" 0.0
    (Mlc.Runner.max_abs_err r.Mlc.Runner.outputs direct.Mlc.Runner.outputs)

let test_degradation_regalloc_pressure () =
  (* An allocator that fails on its first call (the top rung) and
     behaves normally afterwards: a register-pressure failure must
     degrade, not crash. *)
  let calls = ref 0 in
  let allocator fn =
    incr calls;
    if !calls = 1 then
      raise (Mlc_regalloc.Allocator.Out_of_registers Mlc_riscv.Reg.Float_kind)
    else Mlc_regalloc.Remat.allocate_with_remat fn
  in
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let r = Mlc.Runner.run ~allocator spec in
  match r.Mlc.Runner.degradation with
  | None -> Alcotest.fail "expected a degradation record"
  | Some d ->
    Alcotest.(check string) "landed one rung down" "ours-unroll_jam"
      d.Mlc.Runner.rung;
    Alcotest.(check bool) "trail records the regalloc failure" true
      (match d.Mlc.Runner.attempts with
      | [ ("ours", msg) ] ->
        String.length msg >= 8 && String.sub msg 0 8 = "regalloc"
      | _ -> false);
    Alcotest.(check bool) "degraded run still validates" true
      (r.Mlc.Runner.max_abs_err < 1e-9)

let test_degradation_exhaustion () =
  (* Every rung fails: one aggregate diagnostic carrying the whole trail. *)
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  match Mlc.Runner.run ~pipeline_of:(fun f -> Pipeline.passes f @ [ failing_pass ]) spec with
  | _ -> Alcotest.fail "expected every rung to fail"
  | exception Diag.Diagnostic d ->
    Alcotest.(check string) "component" "runner" d.Diag.component;
    Alcotest.(check bool) "one note per rung" true
      (List.length d.Diag.notes >= 4)

let test_no_fallback_propagates () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  Alcotest.(check bool) "original Pass_failed propagates" true
    (match
       Mlc.Runner.run ~fallback:false
         ~pipeline_of:(fun f -> Pipeline.passes f @ [ failing_pass ])
         spec
     with
    | _ -> false
    | exception Mlc_ir.Pass.Pass_failed _ -> true)

let test_golden_set_no_degradation () =
  (* Acceptance: every Table 1 kernel compiles at the top rung. *)
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      let spec = e.Mlc_kernels.Registry.instantiate ~n:4 ~m:8 ~k:4 () in
      let r = Mlc.Runner.run ~flags:Pipeline.ours spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s compiles without fallback" e.Mlc_kernels.Registry.name)
        true
        (r.Mlc.Runner.degradation = None))
    Mlc_kernels.Registry.table1

(* --- the trap model --- *)

open Mlc_sim

let trap_of_engine engine asm =
  let program = Program.of_asm (Asm_parse.parse asm) in
  let machine = Machine.create () in
  let run = match engine with
    | `Fast -> Machine.run
    | `Reference -> Machine.run_reference
  in
  match run machine program ~entry:"main" with
  | _ -> Alcotest.fail "expected a trap"
  | exception Trap.Trap t -> t

let check_both_engines name asm check =
  let t_fast = trap_of_engine `Fast asm in
  let t_ref = trap_of_engine `Reference asm in
  Alcotest.(check bool)
    (name ^ ": identical trap records on both engines")
    true (t_fast = t_ref);
  check t_fast

let test_trap_oob_store () =
  check_both_engines "OOB store"
    {|main:
    li t0, 64
    fsd ft1, 0(t0)
    ret|}
    (fun t ->
      Alcotest.(check bool) "access-fault kind with address and width" true
        (t.Trap.kind = Trap.Access_fault { addr = 64; width = 8 });
      Alcotest.(check int) "trap at the store's pc" 1 t.Trap.pc;
      Alcotest.(check bool) "disassembly names the instruction" true
        (contains t.Trap.insn "fsd");
      Alcotest.(check bool) "machine-state dump attached" true
        (String.length t.Trap.state > 0))

let test_trap_misaligned () =
  check_both_engines "misaligned load"
    (Printf.sprintf {|main:
    li t0, %d
    fld ft1, 0(t0)
    ret|} (Mem.tcdm_base + 4))
    (fun t ->
      Alcotest.(check bool) "access-fault kind" true
        (t.Trap.kind = Trap.Access_fault { addr = Mem.tcdm_base + 4; width = 8 });
      Alcotest.(check int) "trap at the load's pc" 1 t.Trap.pc)

let test_trap_unconfigured_ssr () =
  check_both_engines "unconfigured SSR read"
    {|main:
    csrsi 0x7c0, 1
    fadd.d ft3, ft0, ft0
    csrci 0x7c0, 1
    ret|}
    (fun t ->
      Alcotest.(check bool) "stream-fault kind" true
        (match t.Trap.kind with Trap.Stream_fault _ -> true | _ -> false);
      Alcotest.(check int) "trap at the consuming op's pc" 1 t.Trap.pc)

let test_trap_out_of_fuel () =
  let program = Program.of_asm (Asm_parse.parse "main:\n    j main\n") in
  let machine = Machine.create ~fuel:5_000 () in
  match Machine.run machine program ~entry:"main" with
  | _ -> Alcotest.fail "infinite loop terminated"
  | exception Trap.Trap t ->
    Alcotest.(check bool) "out-of-fuel kind" true (t.Trap.kind = Trap.Out_of_fuel);
    Alcotest.(check bool) "state dump reports exhausted fuel" true
      (contains t.Trap.state "fuel left: 0")

(* --- bundle eviction (the serving daemon's disk cap) --- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_bundle_eviction () =
  let edir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-diag-test-evict"
  in
  rm_rf edir;
  Fun.protect
    ~finally:(fun () ->
      Crash_bundle.set_eviction ();
      Crash_bundle.set_dir bundle_dir;
      rm_rf edir)
    (fun () ->
      Crash_bundle.set_dir edir;
      let write i =
        let d =
          Diag.make ~component:"test"
            ~ir_before:(String.make 512 (Char.chr (Char.code 'a' + i)))
            (Printf.sprintf "eviction fodder %d" i)
        in
        Option.get (Crash_bundle.write d)
      in
      let paths = List.init 4 write in
      (* Distinct mtimes, oldest first, so the size sweep's victim order
         is deterministic. *)
      let now = Unix.gettimeofday () in
      List.iteri
        (fun i p ->
          let t = now -. float_of_int (100 * (4 - i)) in
          Unix.utimes p t t)
        paths;
      let newest = List.nth paths 3 in
      let newest_size = (Unix.stat newest).Unix.st_size in
      (* Size cap: room for the newest bundle only. *)
      Crash_bundle.set_eviction ~max_bytes:(newest_size + 1) ();
      let ev0 = Crash_bundle.evicted () in
      Crash_bundle.sweep ();
      Alcotest.(check int) "three oldest bundles evicted" (ev0 + 3)
        (Crash_bundle.evicted ());
      Alcotest.(check bool) "newest bundle survives" true
        (Sys.file_exists newest);
      List.iteri
        (fun i p ->
          if i < 3 then
            Alcotest.(check bool)
              (Printf.sprintf "bundle %d evicted" i)
              false (Sys.file_exists p))
        paths;
      (* Age cap: back-dated bundles go regardless of size. *)
      Crash_bundle.set_eviction ~max_age_s:60. ();
      Crash_bundle.sweep ();
      Alcotest.(check bool) "age-expired bundle evicted" false
        (Sys.file_exists newest))

let suite =
  [
    ( "diag",
      [
        Alcotest.test_case "parse error carries line:col" `Quick
          test_parse_error_line_col;
        Alcotest.test_case "lex error carries line:col" `Quick
          test_lex_error_line_col;
        Alcotest.test_case "summary format" `Quick test_summary_format;
        Alcotest.test_case "pass failure provenance" `Quick
          test_pass_failure_provenance;
        Alcotest.test_case "crash bundle written" `Quick test_crash_bundle_written;
        Alcotest.test_case "bundle render sections" `Quick
          test_bundle_render_sections;
        Alcotest.test_case "fallback lattice order" `Quick test_lattice_order;
        Alcotest.test_case "degradation: injected pass failure" `Quick
          test_degradation_one_rung;
        Alcotest.test_case "degradation: regalloc pressure" `Quick
          test_degradation_regalloc_pressure;
        Alcotest.test_case "degradation: exhaustion diagnostic" `Quick
          test_degradation_exhaustion;
        Alcotest.test_case "no-fallback propagates original" `Quick
          test_no_fallback_propagates;
        Alcotest.test_case "golden set: no degradation" `Quick
          test_golden_set_no_degradation;
        Alcotest.test_case "trap: OOB store" `Quick test_trap_oob_store;
        Alcotest.test_case "trap: misaligned access" `Quick test_trap_misaligned;
        Alcotest.test_case "trap: unconfigured SSR read" `Quick
          test_trap_unconfigured_ssr;
        Alcotest.test_case "trap: out of fuel" `Quick test_trap_out_of_fuel;
        Alcotest.test_case "bundle eviction: size and age caps" `Quick
          test_bundle_eviction;
      ] );
  ]
