(* Additional cross-cutting tests: loop-rich printer/parser round trips,
   parser robustness against garbage, unstructured control flow
   emission, the simulator trace, and extra affine-map laws. *)

open Mlc_ir
open Mlc_dialects

(* --- loop-rich round trip --- *)

let gen_loop_program =
  QCheck.Gen.(
    pair (int_range 1 6) (list_size (int_range 1 6) (int_bound 3))
    >|= fun (trip, ops) ->
    let m = Builtin.create_module () in
    let b = Builder.at_end (Builtin.module_body m) in
    let _fn, entry =
      Func.func b ~name:"looped"
        ~args:[ Ty.memref [ 8 ] Ty.F64; Ty.F64 ]
        ~results:[]
    in
    let bb = Builder.at_end entry in
    let buf = Ir.Block.arg entry 0 and scale = Ir.Block.arg entry 1 in
    let zero = Arith.const_index bb 0 in
    let ub = Arith.const_index bb trip in
    let one = Arith.const_index bb 1 in
    let init = Arith.const_float bb 0.0 in
    let loop =
      Scf.for_ bb ~lb:zero ~ub ~step:one ~iter_args:[ init ] (fun bb iv iters ->
          let acc = ref (List.hd iters) in
          List.iteri
            (fun i c ->
              let v = Memref.load bb buf [ iv ] in
              (acc :=
                 match c with
                 | 0 -> Arith.addf bb !acc v
                 | 1 -> Arith.mulf bb !acc scale
                 | 2 -> Arith.maxf bb !acc v
                 | _ -> Arith.fmaf bb v scale !acc);
              if i mod 2 = 0 then Memref.store bb !acc buf [ iv ])
            ops;
          [ !acc ])
    in
    ignore (Ir.Op.results loop);
    Func.return_ bb [];
    m)

let arb_loop_program = QCheck.make ~print:Printer.to_string gen_loop_program

let prop_loop_roundtrip =
  QCheck.Test.make ~name:"loop-rich programs round-trip" ~count:40
    arb_loop_program (fun m ->
      Verifier.verify m;
      let t1 = Printer.to_string m in
      let m2 = Parser.parse_string t1 in
      Verifier.verify m2;
      String.equal t1 (Printer.to_string m2))

(* --- parser robustness --- *)

let prop_parser_never_crashes =
  (* Arbitrary strings produce a clean Parse_error / Lex_error, never a
     crash or an unverified op. *)
  QCheck.Test.make ~name:"parser rejects garbage cleanly" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      match Parser.parse_string s with
      | op -> ( match Verifier.verify_result op with Ok _ | Error _ -> true)
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

let prop_parser_mutation_robust =
  (* Mutate one byte of a valid program: the parser either accepts (the
     mutation may be benign, e.g. inside a string) or errors cleanly. *)
  let base =
    Printer.to_string (QCheck.Gen.generate1 gen_loop_program)
  in
  QCheck.Test.make ~name:"parser robust to single-byte mutations" ~count:200
    QCheck.(pair (int_bound (String.length base - 1)) printable_char)
    (fun (i, c) ->
      let mutated = Bytes.of_string base in
      Bytes.set mutated i c;
      match Parser.parse_string (Bytes.to_string mutated) with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception Mlc_diag.Diag.Diagnostic _ -> true (* e.g. malformed affine map *)
      | exception Failure _ -> true (* int_of_string on huge literals *)
      | exception _ -> false)

(* --- unstructured control flow (rv_cf) emission --- *)

let test_rv_cf_emission_and_execution () =
  (* abs-difference via a branch:
       if a >= b then r = a - b else r = b - a
     built as a three-block CFG with pre-assigned registers. *)
  let open Mlc_riscv in
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let region = Ir.Region.create () in
  let entry = Ir.Block.create () in
  let else_b = Ir.Block.create () in
  let exit_b = Ir.Block.create () in
  (* Block layout: the fallthrough successor must be textually next. *)
  Ir.Region.add_block region entry;
  Ir.Region.add_block region exit_b;
  Ir.Region.add_block region else_b;
  ignore
    (Builder.create b
       ~attrs:[ ("sym_name", Attr.Str "absdiff") ]
       ~regions:[ region ] ~results:[] Rv_func.func_op []);
  (* entry: a in t0, b in t1; branch to else when a < b *)
  let bb = Builder.at_end entry in
  let a = Rv.get_register bb "t0" in
  let b1 = Rv.get_register bb "t1" in
  Rv_cf.branch bb Rv_cf.blt_op a b1 ~taken:else_b ~fallthrough:exit_b;
  (* exit block (fallthrough): r = a - b, into t2 *)
  let bb = Builder.at_end exit_b in
  let a' = Rv.get_register bb "t0" in
  let b' = Rv.get_register bb "t1" in
  let diff = Rv.sub bb a' b' in
  Ir.Value.set_ty diff (Ty.Int_reg (Some "t2"));
  Rv_func.return_ bb [];
  (* else: r = b - a, then jump... make it the middle block returning
     directly to keep fallthrough discipline. *)
  let bb = Builder.at_end else_b in
  let a'' = Rv.get_register bb "t0" in
  let b'' = Rv.get_register bb "t1" in
  let diff2 = Rv.sub bb b'' a'' in
  Ir.Value.set_ty diff2 (Ty.Int_reg (Some "t2"));
  Rv_func.return_ bb [];
  Verifier.verify m;
  let asm = Asm_emit.emit_module m in
  let program = Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm) in
  let check x y expected =
    let machine = Mlc_sim.Machine.create () in
    Mlc_sim.Machine.set_ireg machine (Mlc_sim.Asm_parse.xreg "t0") (Int64.of_int x);
    Mlc_sim.Machine.set_ireg machine (Mlc_sim.Asm_parse.xreg "t1") (Int64.of_int y);
    ignore (Mlc_sim.Machine.run machine program ~entry:"absdiff");
    Alcotest.(check int)
      (Printf.sprintf "|%d - %d|" x y)
      expected
      (Int64.to_int (Mlc_sim.Machine.get_ireg machine (Mlc_sim.Asm_parse.xreg "t2")))
  in
  check 9 4 5;
  check 4 9 5;
  check 7 7 0

(* --- simulator trace --- *)

let test_trace_collection () =
  let r = Mlc.Runner.run ~trace:true (Mlc_kernels.Builders.sum ~n:2 ~m:2 ()) in
  Alcotest.(check bool) "trace non-empty" true (List.length r.Mlc.Runner.trace > 5);
  Alcotest.(check bool) "trace mentions the frep" true
    (List.exists
       (fun line ->
         let n = String.length line in
         let rec has i =
           i + 6 <= n && (String.sub line i 6 = "frep.o" || has (i + 1))
         in
         has 0)
       r.Mlc.Runner.trace)

(* --- extra affine laws --- *)

let gen_linear_map n_dims =
  QCheck.Gen.(
    list_size (int_range 1 3)
      (pair (list_size (return n_dims) (int_range (-3) 3)) (int_range (-5) 5))
    >|= fun rows ->
    Affine.make ~num_dims:n_dims ~num_syms:0
      (List.map
         (fun (coefs, c) ->
           List.fold_left2
             (fun acc coef d -> Affine.add acc (Affine.mul (Affine.dim d) (Affine.const coef)))
             (Affine.const c) coefs
             (List.init n_dims Fun.id))
         rows))

let prop_compose_matches_eval =
  QCheck.Test.make ~name:"composition agrees with sequential evaluation"
    ~count:100
    (QCheck.make
       ~print:(fun (f, g) -> Affine.to_string f ^ " . " ^ Affine.to_string g)
       QCheck.Gen.(
         gen_linear_map 2 >>= fun g ->
         let k = Affine.num_results g in
         gen_linear_map k >|= fun f -> (f, g)))
    (fun (f, g) ->
      let dims = [| 3; -2 |] in
      let via_g = Array.of_list (Affine.eval g ~dims ()) in
      let sequential = Affine.eval f ~dims:via_g () in
      let composed = Affine.eval (Affine.compose f g) ~dims () in
      sequential = composed)

(* --- interpreter: memref.alloc --- *)

let test_interp_alloc () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"with_temp"
      ~args:[ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 and z = Ir.Block.arg entry 1 in
  let tmp = Memref.alloc bb [ 4 ] Ty.F64 in
  let id = Affine.identity 1 in
  ignore
    (Linalg.generic bb ~ins:[ x ] ~outs:[ tmp ] ~maps:[ id; id ]
       ~iterators:[ Mlc_ir.Attr.Parallel ]
       (fun bb ins _ -> [ Arith.addf bb (List.hd ins) (List.hd ins) ]));
  ignore
    (Linalg.generic bb ~ins:[ tmp ] ~outs:[ z ] ~maps:[ id; id ]
       ~iterators:[ Mlc_ir.Attr.Parallel ]
       (fun bb ins _ -> [ Arith.addf bb (List.hd ins) (List.hd ins) ]));
  Func.return_ bb [];
  Verifier.verify m;
  let open Mlc_interp in
  let mk data =
    let buf = Interp.buffer_create [ 4 ] Ty.F64 in
    Array.blit data 0 buf.Interp.data 0 4;
    buf
  in
  let xs = mk [| 1.; 2.; 3.; 4. |] in
  let zs = mk [| 0.; 0.; 0.; 0. |] in
  Interp.run_func m "with_temp" [ Interp.Buf xs; Interp.Buf zs ];
  Alcotest.(check (array (float 0.0)))
    "z = 4x through a temporary"
    [| 4.; 8.; 12.; 16. |]
    zs.Interp.data

(* --- pretty printer smoke --- *)

let test_pretty_printer () =
  let spec = Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:20 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m (Mlc_transforms.Pipeline.passes Mlc_transforms.Pipeline.ours);
  List.iter
    (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn))
    (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_func.func_op));
  let text = Mlc_riscv.Rv_pretty.to_string m in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun marker ->
      Alcotest.(check bool) (Printf.sprintf "pretty output mentions %S" marker)
        true (contains marker))
    [
      "rv_func.func @matmul"; "rv_scf.for"; "rv_snitch.frep"; "iter(";
      "rv_snitch.read"; ":ft0"; "yield";
    ]

let suite =
  [
    ( "extra",
      [
        QCheck_alcotest.to_alcotest prop_loop_roundtrip;
        QCheck_alcotest.to_alcotest prop_parser_never_crashes;
        QCheck_alcotest.to_alcotest prop_parser_mutation_robust;
        Alcotest.test_case "rv_cf emission + execution" `Quick
          test_rv_cf_emission_and_execution;
        Alcotest.test_case "trace collection" `Quick test_trace_collection;
        QCheck_alcotest.to_alcotest prop_compose_matches_eval;
        Alcotest.test_case "interp memref.alloc" `Quick test_interp_alloc;
        Alcotest.test_case "pretty printer" `Quick test_pretty_printer;
      ] );
  ]
