(* Tests built on the independent allocation checker (Mlc_regalloc.Check):
   every allocation the compiler produces — across kernels, flows,
   shapes and both allocators — must pass the overlap oracle, and the
   oracle itself must catch a seeded violation. *)

open Mlc_ir
open Mlc_regalloc
open Mlc_transforms

let compiled_fns flags spec =
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m (Pipeline.passes flags);
  let fns =
    Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
  in
  List.iter (fun fn -> ignore (Remat.allocate_with_remat fn)) fns;
  fns

let test_oracle_accepts_suite () =
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.iter
        (fun flags ->
          let spec = e.Mlc_kernels.Registry.instantiate ~n:4 ~m:8 ~k:8 () in
          List.iter
            (fun fn ->
              match Check.check_result fn with
              | Ok () -> ()
              | Error msg ->
                Alcotest.failf "%s: allocation overlap: %s"
                  e.Mlc_kernels.Registry.name msg)
            (compiled_fns flags spec))
        [ Pipeline.ours; Pipeline.mlir; Pipeline.clang; Pipeline.baseline ])
    Mlc_kernels.Registry.table1

let test_oracle_accepts_lowlevel () =
  List.iter
    (fun spec ->
      let m = spec.Mlc_kernels.Lowlevel.build () in
      Pass.run m
        [
          Lower_snitch_stream.pass; Rv_canonicalize.pass;
          Legalize_stream_writes.pass;
        ];
      let fns =
        Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter
        (fun fn ->
          ignore (Allocator.allocate_func fn);
          Check.check_func fn)
        fns)
    [
      Mlc_kernels.Lowlevel.sum32 ~n:8 ~m:8 ();
      Mlc_kernels.Lowlevel.relu32 ~n:8 ~m:8 ();
      Mlc_kernels.Lowlevel.matmul_t32 ~n:4 ~m:8 ~k:8 ();
    ]

let test_oracle_accepts_linear_scan () =
  let spec = Mlc_kernels.Builders.conv3x3 ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m (Pipeline.passes Pipeline.baseline);
  let fn =
    List.hd (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_func.func_op))
  in
  ignore (Linear_scan.allocate_func fn);
  Check.check_func fn

let test_oracle_catches_violation () =
  (* Seed a genuine double-booking: force two simultaneously-live values
     into the same register and expect the oracle to object. *)
  let open Mlc_riscv in
  let m = Mlc_dialects.Builtin.create_module () in
  let b = Builder.at_end (Mlc_dialects.Builtin.module_body m) in
  let _fn, entry = Rv_func.func b ~name:"bad" ~args:[ Reg.Int_kind ] in
  let bb = Builder.at_end entry in
  let base = Ir.Block.arg entry 0 in
  let x = Rv.li bb 1 in
  let y = Rv.li bb 2 in
  let s = Rv.add bb x y in
  Rv.store bb Rv.sd_op s base;
  Rv_func.return_ bb [];
  Ir.Value.set_ty x (Ty.Int_reg (Some "t0"));
  Ir.Value.set_ty y (Ty.Int_reg (Some "t0")) (* overlap: both live at the add *);
  Ir.Value.set_ty s (Ty.Int_reg (Some "t1"));
  let fn =
    List.hd (Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op))
  in
  Alcotest.(check bool) "overlap detected" true
    (match Check.check_func fn with
    | exception Check.Overlap _ -> true
    | () -> false)

let prop_oracle_random_shapes =
  QCheck.Test.make ~name:"allocation oracle over random matmul shapes"
    ~count:12
    (QCheck.make
       ~print:(fun (n, m, k) -> Printf.sprintf "%dx%dx%d" n m k)
       QCheck.Gen.(triple (int_range 1 5) (int_range 1 10) (int_range 1 16)))
    (fun (n, m, k) ->
      let spec = Mlc_kernels.Builders.matmul ~n ~m ~k () in
      List.for_all
        (fun fn -> Check.check_result fn = Ok ())
        (compiled_fns Pipeline.ours spec))

let suite =
  [
    ( "regcheck",
      [
        Alcotest.test_case "oracle accepts the suite" `Slow test_oracle_accepts_suite;
        Alcotest.test_case "oracle accepts handwritten kernels" `Quick
          test_oracle_accepts_lowlevel;
        Alcotest.test_case "oracle accepts linear scan" `Quick
          test_oracle_accepts_linear_scan;
        Alcotest.test_case "oracle catches violations" `Quick
          test_oracle_catches_violation;
        QCheck_alcotest.to_alcotest prop_oracle_random_shapes;
      ] );
  ]
