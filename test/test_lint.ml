(* Machine-code sanitizer (Mlc_analysis.Lint) suite.

   Hand-constructed instruction sequences pin one diagnostic per check
   class — including the two miscompiles the differential fuzzer found
   and PR 2/3 fixed, re-detected here statically: an f32 stream write
   clobbering a neighbour via a missing slot-10 element width (the
   width-after-arm ordering), and scratch use of an SSR data register
   in a streaming region. A qcheck property then cross-checks the lint
   verdict against the simulator's trap behaviour on 200 seeded fuzz
   cases under every pipeline config: a lint-clean program must not
   raise Stream_fault/Illegal, and such a trap on a lint-clean program
   is a linter bug. *)

module D = Mlc_diag.Diag
module Lint = Mlc_analysis.Lint
module Cfg = Mlc_analysis.Cfg
module Dataflow = Mlc_analysis.Dataflow
module Insn = Mlc_sim.Insn
module Program = Mlc_sim.Program
module FC = Mlc_fuzz.Fuzz_case
module FO = Mlc_fuzz.Fuzz_oracle

let prog insns =
  let labels = Hashtbl.create 1 in
  Hashtbl.replace labels "f" 0;
  Program.make ~insns:(Array.of_list insns) ~labels ()

let lint insns = Lint.check_program (prog insns)
let lint_errors insns = Lint.errors (lint insns)

let pp_finding d =
  Printf.sprintf "%s: %s" (Option.value ~default:"-" d.D.pass) d.D.message

let check_findings what expected got =
  Alcotest.(check (list string))
    what expected
    (List.map pp_finding got)

let ssr_csr = 0x7c0

(* A minimal single-read-stream prologue: data mover 0 armed as a
   1-element read with the element width written before the arm. *)
let read_stream_prologue =
  [
    Insn.Li (5, 0L);
    Insn.Scfgwi (5, (2 * 8) + 0) (* bound 0: count - 1 = 0 *);
    Insn.Li (5, 8L);
    Insn.Scfgwi (5, (6 * 8) + 0) (* stride 0 *);
    Insn.Scfgwi (5, (10 * 8) + 0) (* element width 8 *);
    Insn.Li (5, 256L);
    Insn.Scfgwi (5, (24 * 8) + 0) (* arm 1D read *);
  ]

(* --- the two fixed miscompiles, re-detected statically --------------- *)

(* PR 2's "ft2 as scratch" bug shape: an FP temporary allocated to an
   SSR data register inside a streaming region. The write lands in the
   (unconfigured) stream, not the register. *)
let regression_ft2_scratch () =
  let insns =
    read_stream_prologue
    @ [
        Insn.Csrsi (ssr_csr, 1);
        Insn.Fcvt_from_int (Insn.D, 3, 0) (* ft3 := 0.0 *);
        Insn.Fop (Insn.Fadd, Insn.D, 2, 3, 3) (* ft2 as scratch: BUG *);
        Insn.Fop (Insn.Fadd, Insn.D, 4, 0, 3) (* legal pop of ft0 *);
        Insn.Csrci (ssr_csr, 1);
        Insn.Ret;
      ]
  in
  check_findings "exact diagnostic"
    [ "ssr-discipline: ft2: write to an unconfigured stream" ]
    (lint_errors insns)

(* PR 3's config-ordering bug shape: scfgwi issued after ssr_enable.
   The hardware rejects reconfiguration while streaming. *)
let regression_scfgwi_while_enabled () =
  let insns =
    [
      Insn.Csrsi (ssr_csr, 1);
      Insn.Li (5, 0L);
      Insn.Scfgwi (5, (2 * 8) + 0);
      Insn.Csrci (ssr_csr, 1);
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [ "ssr-discipline: scfgwi while streaming is enabled" ]
    (lint_errors insns)

(* --- ssr-discipline -------------------------------------------------- *)

let width_after_arm_warns () =
  let insns =
    [
      Insn.Li (5, 0L);
      Insn.Scfgwi (5, (2 * 8) + 0);
      Insn.Li (5, 256L);
      Insn.Scfgwi (5, (24 * 8) + 0) (* arm first *);
      Insn.Li (6, 8L);
      Insn.Scfgwi (6, (10 * 8) + 0) (* width second: takes no effect *);
      Insn.Ret;
    ]
  in
  let findings = lint insns in
  check_findings "no errors" [] (Lint.errors findings);
  check_findings "warning"
    [
      "ssr-discipline: scfgwi: element width for data mover 0 written \
       after the stream was armed (takes effect only at the next arm)";
    ]
    (List.filter (fun d -> d.D.severity = D.Warning) findings)

let bad_width_constant () =
  let insns =
    [ Insn.Li (5, 6L); Insn.Scfgwi (5, (10 * 8) + 0); Insn.Ret ]
  in
  check_findings "exact diagnostic"
    [ "ssr-discipline: scfgwi: element width must be 4 or 8, got 6" ]
    (lint_errors insns)

let read_write_stream_mixup () =
  (* Arm mover 0 as a WRITE stream, then pop from it. *)
  let insns =
    [
      Insn.Li (5, 0L);
      Insn.Scfgwi (5, (2 * 8) + 0);
      Insn.Li (5, 256L);
      Insn.Scfgwi (5, (28 * 8) + 0) (* arm 1D write *);
      Insn.Csrsi (ssr_csr, 1);
      Insn.Fcvt_from_int (Insn.D, 3, 0);
      Insn.Fop (Insn.Fadd, Insn.D, 4, 0, 3) (* read of a write stream *);
      Insn.Fop (Insn.Fadd, Insn.D, 0, 3, 3) (* balancing write *);
      Insn.Csrci (ssr_csr, 1);
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [ "ssr-discipline: ft0: reading from a write stream" ]
    (lint_errors insns)

(* --- read-before-write ----------------------------------------------- *)

let read_before_write_on_one_path () =
  (* ft6 is defined on the fallthrough path only; the branch skips the
     definition, so the use may read an undefined register. *)
  let insns =
    [
      Insn.Branch (Insn.Beq, 0, 0, 2);
      Insn.Fcvt_from_int (Insn.D, 6, 0);
      Insn.Fop (Insn.Fadd, Insn.D, 5, 6, 6);
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [ "read-before-write: register ft6 may be read before it is written" ]
    (lint_errors insns);
  (* With the definition on every path the finding disappears. *)
  check_findings "defined on all paths" []
    (lint_errors
       [
         Insn.Fcvt_from_int (Insn.D, 6, 0);
         Insn.Fop (Insn.Fadd, Insn.D, 5, 6, 6);
         Insn.Ret;
       ])

let argument_registers_are_defined () =
  (* a0-a7 / fa0-fa7 are defined at entry by the calling convention. *)
  check_findings "no findings" []
    (lint
       [
         Insn.Alu (Insn.Add, 5, 10, 11);
         Insn.Fop (Insn.Fadd, Insn.D, 5, 10, 17);
         Insn.Ret;
       ])

(* --- abi-preservation ------------------------------------------------ *)

let callee_saved_clobber () =
  check_findings "exact diagnostic"
    [
      "abi-preservation: callee-saved register s0 clobbered on a path to \
       this return (the backend never saves/restores)";
    ]
    (lint_errors [ Insn.Li (8, 1L); Insn.Ret ])

(* --- frep-legality --------------------------------------------------- *)

let frep_non_fpu_body () =
  let insns =
    [ Insn.Li (5, 3L); Insn.Frep_o (5, 1); Insn.Li (6, 0L); Insn.Ret ]
  in
  check_findings "exact diagnostic"
    [ "frep-legality: frep body contains a non-FPU instruction: li t1, 0" ]
    (lint_errors insns)

let frep_undefined_rpt () =
  let insns =
    [ Insn.Frep_o (5, 1); Insn.Fcvt_from_int (Insn.D, 4, 0); Insn.Ret ]
  in
  check_findings "exact diagnostic"
    [
      "frep-legality: frep repetition register t0 may be read before it \
       is written";
    ]
    (lint_errors insns)

let frep_body_past_end () =
  let insns =
    [
      Insn.Li (5, 1L);
      Insn.Frep_o (5, 5);
      Insn.Fcvt_from_int (Insn.D, 4, 0);
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [ "frep-legality: frep body runs past the end of the function" ]
    (lint_errors insns)

let branch_into_frep_body () =
  let insns =
    [
      Insn.Li (5, 1L);
      Insn.Branch (Insn.Beq, 0, 0, 3);
      Insn.Frep_o (5, 1);
      Insn.Fcvt_from_int (Insn.D, 4, 0);
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [ "frep-legality: branch into an FREP body (target pc 3)" ]
    (lint_errors insns)

(* --- stream-balance -------------------------------------------------- *)

let stream_overrun () =
  (* 1-element read stream, popped 8 times (frep x4, two pops each):
     would trap at runtime with "read past the end". *)
  let insns =
    read_stream_prologue
    @ [
        Insn.Csrsi (ssr_csr, 1);
        Insn.Li (6, 3L);
        Insn.Frep_o (6, 1);
        Insn.Fop (Insn.Fadd, Insn.D, 4, 0, 0);
        Insn.Csrci (ssr_csr, 1);
        Insn.Ret;
      ]
  in
  check_findings "exact diagnostic"
    [
      "stream-balance: stream ft0 overruns its configured pattern: 8 \
       reads of 1 elements";
    ]
    (lint_errors insns)

let stream_underrun_warns () =
  (* 8-element read stream, popped 4 times: legal but half the pattern
     is left unserved. *)
  let insns =
    [
      Insn.Li (5, 7L);
      Insn.Scfgwi (5, (2 * 8) + 0);
      Insn.Li (5, 8L);
      Insn.Scfgwi (5, (6 * 8) + 0);
      Insn.Scfgwi (5, (10 * 8) + 0);
      Insn.Li (5, 256L);
      Insn.Scfgwi (5, (24 * 8) + 0);
      Insn.Fcvt_from_int (Insn.D, 4, 0);
      Insn.Csrsi (ssr_csr, 1);
      Insn.Li (6, 3L);
      Insn.Frep_o (6, 1);
      Insn.Fop (Insn.Fadd, Insn.D, 4, 0, 4);
      Insn.Csrci (ssr_csr, 1);
      Insn.Ret;
    ]
  in
  let findings = lint insns in
  check_findings "no errors" [] (Lint.errors findings);
  check_findings "warning"
    [
      "stream-balance: stream ft0 underruns its configured pattern: 4 \
       reads of 8 elements";
    ]
    (List.filter (fun d -> d.D.severity = D.Warning) findings)

(* --- cfg -------------------------------------------------------------- *)

let escaping_branch () =
  let insns = [ Insn.Li (5, 1L); Insn.J 17; Insn.Ret ] in
  check_findings "exact diagnostic"
    [ "cfg: control transfer to pc 17, outside function f [0, 2]" ]
    (lint_errors insns)

(* --- framework units -------------------------------------------------- *)

let liveness_smoke () =
  let p =
    prog [ Insn.Li (5, 1L); Insn.Alu (Insn.Add, 6, 5, 5); Insn.Ret ]
  in
  let func = List.hd (Cfg.functions p) in
  let cfg = Cfg.build p func in
  let live = Dataflow.liveness cfg in
  Alcotest.(check bool) "x5 live into its use" true
    (Dataflow.Regset.mem_int 5 (live 1));
  Alcotest.(check bool) "x5 dead before its def" false
    (Dataflow.Regset.mem_int 5 (live 0));
  Alcotest.(check bool) "x6 never live" false
    (Dataflow.Regset.mem_int 6 (live 0))

let error_of_aggregates () =
  (* One clobber reported at each of the two return paths. *)
  let errs =
    lint_errors
      [
        Insn.Li (8, 1L);
        Insn.Branch (Insn.Beq, 0, 0, 3);
        Insn.Ret;
        Insn.Ret;
      ]
  in
  Alcotest.(check int) "two clobbers" 2 (List.length errs);
  match Lint.error_of errs with
  | None -> Alcotest.fail "expected an aggregated diagnostic"
  | Some d ->
    Alcotest.(check int) "second error carried as a note" 1
      (List.length d.D.notes)

(* --- compiler output is lint-clean ------------------------------------ *)

let registry_clean () =
  List.iter
    (fun name ->
      match Mlc_kernels.Registry.by_short_name name with
      | None -> Alcotest.failf "unknown registry kernel %s" name
      | Some e ->
        let spec = e.Mlc_kernels.Registry.instantiate ~n:8 ~m:8 ~k:8 () in
        let m = spec.Mlc_kernels.Builders.build () in
        ignore (Mlc_transforms.Pipeline.compile ~flags:Mlc_transforms.Pipeline.ours m);
        check_findings (name ^ " under ours") [] (Lint.check_module m))
    Mlc_kernels.Registry.short_names

(* --- lint vs simulator differential property -------------------------- *)

(* 200 deterministically seeded fuzz cases, each compiled under every
   pipeline config. The invariant (lint.mli): a trap-class lint error
   predicts a Stream_fault/Illegal trap on some path, so a run that
   completes must come from a program clean of those classes — and a
   Stream_fault/Illegal trap must not come from a lint-clean program. *)
let lint_vs_sim_case case =
  let module B = Mlc_kernels.Builders in
  let spec = FC.to_spec case in
  List.for_all
    (fun (config, flags, backend) ->
      let m = spec.B.build () in
      match
        Mlc_transforms.Pipeline.compile ~verify_each:false ~flags
          ~passes:(Mlc_transforms.Backend.passes_for backend flags)
          m
      with
      | exception _ -> true (* compile failures are the oracle's domain *)
      | _ -> (
        let program = Mlc_riscv.Insn_emit.emit_module m in
        let trap_errs =
          List.filter
            (fun d ->
              match d.D.pass with
              | Some c -> List.mem c Lint.trap_classes
              | None -> false)
            (Lint.errors (Lint.check_program program))
        in
        let data =
          Mlc.Runner.gen_inputs ~seed:(FC.input_seed case) ~elem:spec.B.elem
            spec.B.args
        in
        match
          Mlc.Runner.simulate_program ~elem:spec.B.elem
            ~fn_name:spec.B.fn_name ~args:spec.B.args ~data program
        with
        | _ ->
          if trap_errs <> [] then
            QCheck.Test.fail_reportf
              "%s: trap-class lint error on a program that runs: %s" config
              (D.summary (List.hd trap_errs))
          else true
        | exception Mlc_sim.Trap.Trap
            ({ kind = Stream_fault _ | Illegal _; _ } as tr) ->
          if trap_errs = [] then
            QCheck.Test.fail_reportf
              "%s: %s trap on a lint-clean program (linter bug)" config
              (Mlc_sim.Trap.summary tr)
          else true
        | exception _ -> true))
    FO.configs

(* --- DMA / barrier discipline (cluster wrapper contracts) ------------ *)

let dma_prologue =
  [
    Insn.Li (5, 0x10000100L);
    Insn.Li (6, 0x10000200L);
    Insn.Li (7, 64L);
    Insn.Li (28, 4L);
    Insn.Dm_src 5;
    Insn.Dm_dst 6;
    Insn.Dm_str (7, 7);
    Insn.Dm_rep 28;
  ]

let dma_clean_sequence () =
  let insns =
    dma_prologue @ [ Insn.Dm_cpy 7; Insn.Dm_wait; Insn.Barrier; Insn.Ret ]
  in
  check_findings "fully programmed, drained before the barrier: clean" []
    (lint insns)

let dma_unprogrammed_launch () =
  let insns =
    [
      Insn.Li (5, 0x10000100L);
      Insn.Li (6, 0x10000200L);
      Insn.Dm_src 5;
      Insn.Dm_dst 6;
      Insn.Li (7, 64L);
      Insn.Dm_cpy 7 (* stride and repeat never written: BUG *);
      Insn.Dm_wait;
      Insn.Ret;
    ]
  in
  check_findings "exact diagnostic"
    [
      "dma-discipline: dmcpy launches with the stride (dmstr), repetition \
       (dmrep) registers unprogrammed on some path";
    ]
    (lint_errors insns)

let dma_barrier_in_flight () =
  let insns = dma_prologue @ [ Insn.Dm_cpy 7; Insn.Barrier; Insn.Ret ] in
  check_findings "exact diagnostic"
    [
      "dma-discipline: barrier with a DMA transfer still in flight: the \
       barrier does not drain the DMA engine, issue dmwait first";
    ]
    (lint_errors insns)

let dma_return_in_flight_warns () =
  let insns = dma_prologue @ [ Insn.Dm_cpy 7; Insn.Ret ] in
  check_findings "no errors" [] (lint_errors insns);
  check_findings "warning"
    [
      "dma-discipline: function returns with a DMA transfer possibly in \
       flight";
    ]
    (lint insns)

let barrier_while_streaming () =
  let insns =
    read_stream_prologue
    @ [
        Insn.Csrsi (ssr_csr, 1);
        Insn.Fcvt_from_int (Insn.D, 4, 0) (* ft4 := 0.0 *);
        Insn.Fop (Insn.Fadd, Insn.D, 4, 0, 4) (* pop ft0 *);
        Insn.Barrier (* rendezvous inside the region: BUG *);
        Insn.Csrci (ssr_csr, 1);
        Insn.Ret;
      ]
  in
  check_findings "exact diagnostic"
    [ "dma-discipline: barrier inside an SSR streaming region" ]
    (lint_errors insns)

let prop_lint_vs_sim =
  (* Deterministic seeding independent of qcheck's own state, mirroring
     Fuzz.run's per-case scheme. *)
  let counter = ref 0 in
  let gen _st =
    let st = Random.State.make [| 42; !counter; 0x117 |] in
    incr counter;
    Mlc_fuzz.Fuzz_gen.gen st
  in
  QCheck.Test.make ~name:"lint verdict agrees with simulator traps"
    ~count:200
    (QCheck.make ~print:FC.to_string gen)
    lint_vs_sim_case

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "regression: ft2 as scratch in streaming region"
          `Quick regression_ft2_scratch;
        Alcotest.test_case "regression: scfgwi after ssr_enable" `Quick
          regression_scfgwi_while_enabled;
        Alcotest.test_case "width after arm warns" `Quick width_after_arm_warns;
        Alcotest.test_case "bad element-width constant" `Quick
          bad_width_constant;
        Alcotest.test_case "reading a write stream" `Quick
          read_write_stream_mixup;
        Alcotest.test_case "read-before-write on one path" `Quick
          read_before_write_on_one_path;
        Alcotest.test_case "argument registers defined at entry" `Quick
          argument_registers_are_defined;
        Alcotest.test_case "callee-saved clobber" `Quick callee_saved_clobber;
        Alcotest.test_case "frep: non-FPU body" `Quick frep_non_fpu_body;
        Alcotest.test_case "frep: undefined repetition register" `Quick
          frep_undefined_rpt;
        Alcotest.test_case "frep: body past function end" `Quick
          frep_body_past_end;
        Alcotest.test_case "frep: branch into body" `Quick
          branch_into_frep_body;
        Alcotest.test_case "stream overrun" `Quick stream_overrun;
        Alcotest.test_case "stream underrun warns" `Quick stream_underrun_warns;
        Alcotest.test_case "dma: clean sequence" `Quick dma_clean_sequence;
        Alcotest.test_case "dma: unprogrammed launch" `Quick
          dma_unprogrammed_launch;
        Alcotest.test_case "dma: barrier with transfer in flight" `Quick
          dma_barrier_in_flight;
        Alcotest.test_case "dma: return in flight warns" `Quick
          dma_return_in_flight_warns;
        Alcotest.test_case "barrier while streaming" `Quick
          barrier_while_streaming;
        Alcotest.test_case "escaping control transfer" `Quick escaping_branch;
        Alcotest.test_case "liveness smoke" `Quick liveness_smoke;
        Alcotest.test_case "error_of aggregation" `Quick error_of_aggregates;
        Alcotest.test_case "registry kernels lint clean under ours" `Quick
          registry_clean;
        QCheck_alcotest.to_alcotest prop_lint_vs_sim;
      ] );
  ]
