(* Tests for the Snitch simulator: assembler, functional semantics,
   SSR streaming, FREP, and the timing model's qualitative properties
   (the properties the paper's evaluation relies on). *)

open Mlc_sim

let run_asm ?(setup = fun (_ : Machine.t) -> ()) asm =
  let program = Program.of_asm (Asm_parse.parse asm) in
  let machine = Machine.create () in
  setup machine;
  let outcome = Machine.run machine program ~entry:"main" in
  (machine, outcome)

let check_int = Alcotest.(check int)
let check_f64 = Alcotest.(check (float 1e-12))

let ireg (m : Machine.t) name = Int64.to_int (Machine.get_ireg m (Asm_parse.xreg name))
let freg_f64 (m : Machine.t) name =
  Int64.float_of_bits (Machine.get_freg_raw m (Asm_parse.freg name))

(* --- assembler --- *)

let test_parse_basic () =
  let p = Asm_parse.parse "main:\n    li t0, 42\n    addi t1, t0, -1 # comment\n    ret\n" in
  check_int "three instructions" 3 (Array.length p.Asm_parse.insns);
  check_int "label at 0" 0 (Asm_parse.entry p "main")

let test_parse_memory_operand () =
  let p = Asm_parse.parse "main:\n    fld ft0, 16(a0)\n    ret" in
  match p.Asm_parse.insns.(0) with
  | Insn.Fload (8, 0, 16, 10) -> ()
  | _ -> Alcotest.fail "fld decoded incorrectly"

let test_parse_rejects_unknown () =
  Alcotest.(check bool) "unknown mnemonic" true
    (match Asm_parse.parse "main:\n    bogus t0, t1\n" with
    | exception Asm_parse.Asm_error _ -> true
    | _ -> false)

let test_parse_rejects_undefined_label () =
  Alcotest.(check bool) "undefined label" true
    (match Asm_parse.parse "main:\n    j nowhere\n" with
    | exception Asm_parse.Asm_error _ -> true
    | _ -> false)

let test_parse_hex_immediate () =
  let p = Asm_parse.parse "main:\n    li t0, 0xbff0000000000000\n    ret" in
  match p.Asm_parse.insns.(0) with
  | Insn.Li (5, bits) ->
    check_f64 "li bit pattern is -1.0" (-1.0) (Int64.float_of_bits bits)
  | _ -> Alcotest.fail "li decoded incorrectly"

(* --- functional semantics --- *)

let test_integer_arithmetic () =
  let m, _ =
    run_asm
      {|main:
    li t0, 21
    li t1, 2
    mul t2, t0, t1
    addi t3, t2, -2
    slli t4, t1, 4
    sub t5, t4, t1
    ret|}
  in
  check_int "mul" 42 (ireg m "t2");
  check_int "addi" 40 (ireg m "t3");
  check_int "slli" 32 (ireg m "t4");
  check_int "sub" 30 (ireg m "t5")

let test_float_arithmetic () =
  let m, _ =
    run_asm
      {|main:
    li t0, 0x4008000000000000
    fmv.d.x ft1, t0
    li t1, 0x3ff0000000000000
    fmv.d.x ft2, t1
    fadd.d ft3, ft1, ft2
    fmul.d ft4, ft1, ft2
    fmadd.d ft5, ft1, ft1, ft2
    fmax.d ft6, ft1, ft2
    fcvt.d.w ft7, zero
    ret|}
  in
  check_f64 "3+1" 4.0 (freg_f64 m "ft3");
  check_f64 "3*1" 3.0 (freg_f64 m "ft4");
  check_f64 "3*3+1" 10.0 (freg_f64 m "ft5");
  check_f64 "max" 3.0 (freg_f64 m "ft6");
  check_f64 "cvt zero" 0.0 (freg_f64 m "ft7")

let test_memory_roundtrip () =
  let m, _ =
    run_asm
      ~setup:(fun m -> Machine.set_ireg m 10 (Int64.of_int Mem.tcdm_base))
      {|main:
    li t0, 0x400921fb54442d18
    fmv.d.x ft1, t0
    fsd ft1, 8(a0)
    fld ft2, 8(a0)
    li t1, 7
    sd t1, 32(a0)
    ld t2, 32(a0)
    ret|}
  in
  check_f64 "fsd/fld" Float.pi (freg_f64 m "ft2");
  check_int "sd/ld" 7 (ireg m "t2")

let test_loop_and_branches () =
  (* Sum 0..9 with a branch loop. *)
  let m, _ =
    run_asm
      {|main:
    li t0, 0
    li t1, 0
    li t2, 10
.loop:
    add t1, t1, t0
    addi t0, t0, 1
    blt t0, t2, .loop
    ret|}
  in
  check_int "sum 0..9" 45 (ireg m "t1")

let test_packed_simd () =
  let m, _ =
    run_asm
      ~setup:(fun m ->
        Mem.store_f32 m.Machine.mem Mem.tcdm_base 1.5;
        Mem.store_f32 m.Machine.mem (Mem.tcdm_base + 4) 2.5;
        Mem.store_f32 m.Machine.mem (Mem.tcdm_base + 8) 10.0;
        Mem.store_f32 m.Machine.mem (Mem.tcdm_base + 12) 20.0;
        Machine.set_ireg m 10 (Int64.of_int Mem.tcdm_base))
      {|main:
    fld ft1, 0(a0)
    fld ft2, 8(a0)
    vfadd.s ft3, ft1, ft2
    fcvt.d.w ft4, zero
    vfmac.s ft4, ft1, ft2
    fcvt.d.w ft5, zero
    vfsum.s ft5, ft4
    vfcpka.s.s ft6, ft1, ft2
    fsd ft3, 16(a0)
    ret|}
  in
  let lo = Mem.load_f32 m.Machine.mem (Mem.tcdm_base + 16) in
  let hi = Mem.load_f32 m.Machine.mem (Mem.tcdm_base + 20) in
  Alcotest.(check (float 1e-6)) "vfadd lo" 11.5 lo;
  Alcotest.(check (float 1e-6)) "vfadd hi" 22.5 hi;
  (* vfmac: 1.5*10 + 0 = 15 (lo); 2.5*20 (hi); vfsum: 0 + 15 + 50 = 65 *)
  Alcotest.(check (float 1e-6)) "vfsum" 65.0
    (Int32.float_of_bits (Int64.to_int32 (Machine.get_freg_raw m 5)))

(* --- SSR streaming --- *)

let stream_sum_asm n =
  (* z[i] = x[i] + y[i] over n doubles via three SSRs and FREP. *)
  Printf.sprintf
    {|main:
    li t0, 0
    scfgwi t0, 8
    li t0, %d
    scfgwi t0, 16
    li t0, 8
    scfgwi t0, 48
    scfgwi a0, 192
    li t0, 0
    scfgwi t0, 9
    li t0, %d
    scfgwi t0, 17
    li t0, 8
    scfgwi t0, 49
    scfgwi a1, 193
    li t0, 0
    scfgwi t0, 10
    li t0, %d
    scfgwi t0, 18
    li t0, 8
    scfgwi t0, 50
    scfgwi a2, 226
    csrsi 0x7c0, 1
    li t1, %d
    frep.o t1, 1, 0, 0
    fadd.d ft2, ft0, ft1
    csrci 0x7c0, 1
    ret|}
    (n - 1) (n - 1) (n - 1) (n - 1)

let test_ssr_streaming () =
  let n = 16 in
  let base = Mem.tcdm_base in
  let m, outcome =
    run_asm
      ~setup:(fun m ->
        for i = 0 to n - 1 do
          Mem.store_f64 m.Machine.mem (base + (8 * i)) (float_of_int i);
          Mem.store_f64 m.Machine.mem (base + 256 + (8 * i)) (float_of_int (10 * i))
        done;
        Machine.set_ireg m 10 (Int64.of_int base);
        Machine.set_ireg m 11 (Int64.of_int (base + 256));
        Machine.set_ireg m 12 (Int64.of_int (base + 512)))
      (stream_sum_asm n)
  in
  for i = 0 to n - 1 do
    check_f64
      (Printf.sprintf "z[%d]" i)
      (float_of_int (11 * i))
      (Mem.load_f64 m.Machine.mem (base + 512 + (8 * i)))
  done;
  check_int "no explicit loads" 0 outcome.Machine.perf.Machine.loads;
  check_int "no explicit stores" 0 outcome.Machine.perf.Machine.stores;
  check_int "stream reads" (2 * n) outcome.Machine.perf.Machine.stream_reads;
  check_int "stream writes" n outcome.Machine.perf.Machine.stream_writes;
  check_int "one frep" 1 outcome.Machine.perf.Machine.freps

let test_ssr_repeat () =
  (* A 1-element pattern with repeat 3 read four times. *)
  let base = Mem.tcdm_base in
  let m, _ =
    run_asm
      ~setup:(fun m ->
        Mem.store_f64 m.Machine.mem base 2.5;
        Machine.set_ireg m 10 (Int64.of_int base))
      {|main:
    li t0, 3
    scfgwi t0, 8
    li t0, 0
    scfgwi t0, 16
    li t0, 8
    scfgwi t0, 48
    scfgwi a0, 192
    csrsi 0x7c0, 1
    fcvt.d.w ft3, zero
    fadd.d ft3, ft3, ft0
    fadd.d ft3, ft3, ft0
    fadd.d ft3, ft3, ft0
    fadd.d ft3, ft3, ft0
    csrci 0x7c0, 1
    ret|}
  in
  check_f64 "repeat served 4x" 10.0 (freg_f64 m "ft3")

let test_ssr_overrun_detected () =
  let base = Mem.tcdm_base in
  Alcotest.(check bool) "stream overrun raises" true
    (match
       run_asm
         ~setup:(fun m -> Machine.set_ireg m 10 (Int64.of_int base))
         {|main:
    li t0, 0
    scfgwi t0, 8
    li t0, 0
    scfgwi t0, 16
    li t0, 8
    scfgwi t0, 48
    scfgwi a0, 192
    csrsi 0x7c0, 1
    fadd.d ft3, ft0, ft0
    csrci 0x7c0, 1
    ret|}
     with
    | exception Trap.Trap { kind = Trap.Stream_fault _; _ } -> true
    | _ -> false)

let test_frep_non_fpu_body_rejected () =
  Alcotest.(check bool) "integer op in frep body" true
    (match
       run_asm {|main:
    li t1, 3
    frep.o t1, 1, 0, 0
    addi t2, t1, 1
    ret|}
     with
    | exception Trap.Trap { kind = Trap.Illegal _; _ } -> true
    | _ -> false)

let test_fuel_exhaustion () =
  Alcotest.(check bool) "infinite loop runs out of fuel" true
    (match
       let program = Program.of_asm (Asm_parse.parse "main:\n    j main\n") in
       let machine = Machine.create ~fuel:10_000 () in
       Machine.run machine program ~entry:"main"
     with
    | exception Trap.Trap { kind = Trap.Out_of_fuel; _ } -> true
    | _ -> false)

let test_tcdm_bounds () =
  Alcotest.(check bool) "out-of-TCDM access faults" true
    (match run_asm {|main:
    li t0, 64
    fld ft1, 0(t0)
    ret|} with
    | exception Trap.Trap { kind = Trap.Access_fault { addr = 64; width = 8 }; _ } ->
      true
    | _ -> false)

(* --- timing model properties --- *)

let cycles asm =
  let _, outcome = run_asm asm in
  outcome.Machine.perf.Machine.cycles

let test_dependent_fp_ops_stall () =
  (* A chain of dependent fadds pays the 3-cycle latency; independent
     fadds pipeline at 1/cycle. *)
  let dep =
    cycles
      {|main:
    fcvt.d.w ft1, zero
    fadd.d ft1, ft1, ft1
    fadd.d ft1, ft1, ft1
    fadd.d ft1, ft1, ft1
    fadd.d ft1, ft1, ft1
    ret|}
  in
  let indep =
    cycles
      {|main:
    fcvt.d.w ft1, zero
    fadd.d ft2, ft1, ft1
    fadd.d ft3, ft1, ft1
    fadd.d ft4, ft1, ft1
    fadd.d ft5, ft1, ft1
    ret|}
  in
  Alcotest.(check bool)
    (Printf.sprintf "dependent (%d) slower than independent (%d)" dep indep)
    true
    (dep >= indep + 5)

let test_frep_decouples_core () =
  (* With FREP the integer core runs ahead: total should be close to the
     FP work, not FP work + loop control. *)
  let n = 64 in
  let with_frep =
    cycles
      (Printf.sprintf
         {|main:
    fcvt.d.w ft1, zero
    fcvt.d.w ft2, zero
    fcvt.d.w ft3, zero
    fcvt.d.w ft4, zero
    li t1, %d
    frep.o t1, 4, 0, 0
    fadd.d ft1, ft1, ft1
    fadd.d ft2, ft2, ft2
    fadd.d ft3, ft3, ft3
    fadd.d ft4, ft4, ft4
    ret|}
         (n - 1))
  in
  (* 4 independent chains, n iterations: ~4n cycles. *)
  Alcotest.(check bool)
    (Printf.sprintf "frep runs at ~1 FP op/cycle (%d for %d ops)" with_frep (4 * n))
    true
    (with_frep < (4 * n) + 32)

let test_fpu_fifo_bounds_decoupling () =
  (* A long RAW chain of fadds followed by independent integer work: the
     core may run ahead of the FPU, but only by the FIFO depth. With 32
     dependent fadds (3 cycles apart) the FPU finishes around ~100; the
     integer work after them must not all retire before the FPU drains
     its backlog below the FIFO bound. *)
  let chain = String.concat "\n" (List.init 32 (fun _ -> "    fadd.d ft1, ft1, ft1")) in
  let total =
    cycles
      (Printf.sprintf {|main:
    fcvt.d.w ft1, zero
%s
    ret|} chain)
  in
  (* 32 dependent fadds: ~3 cycles each. *)
  Alcotest.(check bool)
    (Printf.sprintf "RAW chain dominated by FPU latency (%d cycles)" total)
    true
    (total >= 90 && total <= 120)

let test_taken_branch_costs_more () =
  let taken =
    cycles {|main:
    li t0, 0
    li t1, 100
.l:
    addi t0, t0, 1
    blt t0, t1, .l
    ret|}
  in
  (* 100 iterations x (addi 1 + taken branch 2) ~ 300. *)
  Alcotest.(check bool) (Printf.sprintf "taken branches cost 2 (%d)" taken) true
    (taken >= 295 && taken <= 310)

let suite =
  [
    ( "sim",
      [
        Alcotest.test_case "parse basic" `Quick test_parse_basic;
        Alcotest.test_case "parse memory operand" `Quick test_parse_memory_operand;
        Alcotest.test_case "parse rejects unknown" `Quick test_parse_rejects_unknown;
        Alcotest.test_case "parse rejects undefined label" `Quick
          test_parse_rejects_undefined_label;
        Alcotest.test_case "parse hex immediate" `Quick test_parse_hex_immediate;
        Alcotest.test_case "integer arithmetic" `Quick test_integer_arithmetic;
        Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
        Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
        Alcotest.test_case "loop and branches" `Quick test_loop_and_branches;
        Alcotest.test_case "packed SIMD" `Quick test_packed_simd;
        Alcotest.test_case "SSR streaming" `Quick test_ssr_streaming;
        Alcotest.test_case "SSR repeat" `Quick test_ssr_repeat;
        Alcotest.test_case "SSR overrun detected" `Quick test_ssr_overrun_detected;
        Alcotest.test_case "frep rejects integer body" `Quick
          test_frep_non_fpu_body_rejected;
        Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        Alcotest.test_case "TCDM bounds" `Quick test_tcdm_bounds;
        Alcotest.test_case "timing: RAW stalls" `Quick test_dependent_fp_ops_stall;
        Alcotest.test_case "timing: frep decouples core" `Quick
          test_frep_decouples_core;
        Alcotest.test_case "timing: taken branch cost" `Quick
          test_taken_branch_costs_more;
        Alcotest.test_case "timing: RAW chain bound" `Quick
          test_fpu_fifo_bounds_decoupling;
      ] );
  ]
