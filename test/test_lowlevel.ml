(* Tests for the handwritten assembly-level kernels (paper §4.2 / RQ1):
   the low-level dialects express the kernels, the allocator places them
   spill-free (RQ2), and the simulated output matches the lane-exact
   references bit for bit. *)

let check_exact name (r : Mlc.Runner.run_result) =
  Alcotest.(check (float 0.0))
    (name ^ ": bit-exact against lane-accurate reference")
    0.0 r.Mlc.Runner.max_abs_err

let test_sum32 () =
  let spec = Mlc_kernels.Lowlevel.sum32 ~n:8 ~m:8 () in
  let r = Mlc.Runner.run_lowlevel spec in
  check_exact "sum32" r;
  Alcotest.(check int) "streams only, no explicit memory ops" 0
    (r.Mlc.Runner.metrics.loads + r.Mlc.Runner.metrics.stores);
  Alcotest.(check int) "one hardware loop" 1 r.Mlc.Runner.metrics.freps

let test_relu32 () =
  let spec = Mlc_kernels.Lowlevel.relu32 ~n:8 ~m:8 () in
  let r = Mlc.Runner.run_lowlevel spec in
  check_exact "relu32" r

let test_matmul_t32 () =
  let spec = Mlc_kernels.Lowlevel.matmul_t32 ~n:4 ~m:8 ~k:16 () in
  let r = Mlc.Runner.run_lowlevel spec in
  check_exact "matmul_t32" r

(* Figure 9: high FPU utilisation for the low-level kernels, growing
   with size; Table 2: the 32-bit register budgets hold. *)

let test_fig9_utilization_band () =
  List.iter
    (fun (name, spec, lo) ->
      let r = Mlc.Runner.run_lowlevel spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s util %.1f%% >= %.0f%%" name
           r.Mlc.Runner.metrics.fpu_util lo)
        true
        (r.Mlc.Runner.metrics.fpu_util >= lo))
    [
      ("sum32 64x64", Mlc_kernels.Lowlevel.sum32 ~n:64 ~m:64 (), 90.0);
      ("relu32 64x64", Mlc_kernels.Lowlevel.relu32 ~n:64 ~m:64 (), 90.0);
      ("matmul_t32 8x16x32", Mlc_kernels.Lowlevel.matmul_t32 ~n:8 ~m:16 ~k:32 (), 70.0);
    ]

(* The paper's key §4.2 observation: "The cycle count overhead remains
   constant independent of the sizes", implying utilisation trends to
   100% as sizes grow. *)
let test_constant_overhead () =
  List.iter
    (fun (name, mk, min_cycles) ->
      let overheads =
        List.map
          (fun (n, m) ->
            let spec = mk ~n ~m in
            let r = Mlc.Runner.run_lowlevel spec in
            r.Mlc.Runner.metrics.cycles - min_cycles spec)
          [ (8, 8); (16, 16); (32, 32); (64, 64) ]
      in
      match overheads with
      | first :: rest ->
        List.iter
          (fun o ->
            Alcotest.(check int)
              (Printf.sprintf "%s: setup overhead constant across sizes" name)
              first o)
          rest
      | [] -> ())
    [
      ( "sum32",
        (fun ~n ~m -> Mlc_kernels.Lowlevel.sum32 ~n ~m ()),
        fun s -> s.Mlc_kernels.Lowlevel.min_cycles );
      ( "relu32",
        (fun ~n ~m -> Mlc_kernels.Lowlevel.relu32 ~n ~m ()),
        fun s -> s.Mlc_kernels.Lowlevel.min_cycles );
    ]

let test_utilization_grows_with_size () =
  let util spec = (Mlc.Runner.run_lowlevel spec).Mlc.Runner.metrics.fpu_util in
  let small = util (Mlc_kernels.Lowlevel.sum32 ~n:8 ~m:8 ()) in
  let large = util (Mlc_kernels.Lowlevel.sum32 ~n:64 ~m:64 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "util grows: %.1f%% -> %.1f%%" small large)
    true (large > small)

let test_table2_register_budgets () =
  (* Paper Table 2, 32-bit rows: ReLU 3 FP, Sum 3 FP, MatMulT ~11 FP /
     ~12 int. Check our counts stay at or below the paper's. *)
  List.iter
    (fun (name, spec, fp_max, int_max) ->
      let r = Mlc.Runner.run_lowlevel spec in
      let rep = Option.get r.Mlc.Runner.report in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d/20 FP (<= %d), %d/15 int (<= %d)" name
           rep.Mlc_regalloc.Allocator.fp_count fp_max
           rep.Mlc_regalloc.Allocator.int_count int_max)
        true
        (rep.Mlc_regalloc.Allocator.fp_count <= fp_max
        && rep.Mlc_regalloc.Allocator.int_count <= int_max))
    [
      ("sum32", Mlc_kernels.Lowlevel.sum32 ~n:4 ~m:8 (), 3, 7);
      ("relu32", Mlc_kernels.Lowlevel.relu32 ~n:4 ~m:8 (), 3, 5);
      ("matmul_t32", Mlc_kernels.Lowlevel.matmul_t32 ~n:4 ~m:16 ~k:16 (), 11, 12);
    ]

let test_matmul_t32_uses_repeat_optimization () =
  (* The A stream serves each element 4 times through the hardware
     repeat, not 4 separate reads of memory: stream reads from A+B must
     equal 2 reads per vfmac. *)
  let spec = Mlc_kernels.Lowlevel.matmul_t32 ~n:2 ~m:8 ~k:8 () in
  let r = Mlc.Runner.run_lowlevel spec in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "assembly contains a repeat configuration" true
    (contains r.Mlc.Runner.asm "repeat")

let suite =
  [
    ( "lowlevel",
      [
        Alcotest.test_case "sum32 exact" `Quick test_sum32;
        Alcotest.test_case "relu32 exact" `Quick test_relu32;
        Alcotest.test_case "matmul_t32 exact" `Quick test_matmul_t32;
        Alcotest.test_case "Figure 9 utilisation band" `Quick test_fig9_utilization_band;
        Alcotest.test_case "utilisation grows with size" `Quick
          test_utilization_grows_with_size;
        Alcotest.test_case "constant setup overhead (Figure 9)" `Quick
          test_constant_overhead;
        Alcotest.test_case "Table 2 register budgets" `Quick test_table2_register_budgets;
        Alcotest.test_case "repeat optimisation used" `Quick
          test_matmul_t32_uses_repeat_optimization;
      ] );
  ]
