(* Test-suite entry point: aggregates per-module suites into one alcotest
   run so that `dune runtest` exercises everything. *)

let () =
  Alcotest.run "snitch_mlc"
    (Test_affine.suite @ Test_ir.suite @ Test_dialects.suite
   @ Test_interp.suite @ Test_sim.suite @ Test_transforms.suite
   @ Test_regalloc.suite @ Test_linear_scan.suite @ Test_pipeline.suite
   @ Test_lowlevel.suite @ Test_extra.suite @ Test_regcheck.suite
   @ Test_perf_model.suite @ Test_fuzz.suite @ Test_diag.suite
   @ Test_lint.suite @ Test_parallel.suite @ Test_block_exec.suite
   @ Test_cluster.suite @ Test_serve.suite @ Test_verify.suite @ Test_rvv.suite)
