(* The simulator performance-model contract (DESIGN.md, "Simulator
   performance & timing contract"):

   1. Golden cycle counts: the timing model's outputs on canonical
      kernels are pinned exactly. The fast-path machinery (pre-decoded
      programs, FREP steady-state replay) is an implementation change,
      not a model change — any drift in these numbers is a regression.
   2. Engine differential: the fast engine and the reference
      per-instruction loop produce bit-identical counters and outputs on
      every kernel in the registry.
   3. Emission equivalence: direct IR → Insn lowering produces the same
      program as the print → parse text round-trip, for every registry
      kernel and for the loop-based baseline pipeline.
   4. Unit semantics pinned along the way: fmv.w.x packed-lane payload,
      the bounded trace ring, and the FREP steady-state fast path on a
      fully-streamed body. *)

open Mlc
open Mlc_sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

(* --- 1. golden metrics --- *)

type golden = {
  g_name : string;
  spec : Mlc_kernels.Builders.spec;
  cycles : int;
  fpu_util : float;
  flops : int;
  loads : int;
  stores : int;
  freps : int;
  retired : int;
}

let goldens =
  let open Mlc_kernels.Builders in
  [
    { g_name = "matmul 4x16x8"; spec = matmul ~n:4 ~m:16 ~k:8 ();
      cycles = 706; fpu_util = 90.793201; flops = 1024; loads = 0;
      stores = 0; freps = 8; retired = 738 };
    { g_name = "matmul 1x5x200"; spec = matmul ~n:1 ~m:5 ~k:200 ();
      cycles = 1046; fpu_util = 96.653920; flops = 2000; loads = 0;
      stores = 0; freps = 1; retired = 1042 };
    { g_name = "sum 16x16"; spec = sum ~n:16 ~m:16 ();
      cycles = 287; fpu_util = 89.198606; flops = 256; loads = 0;
      stores = 0; freps = 16; retired = 347 };
    { g_name = "sum 4x8"; spec = sum ~n:4 ~m:8 ();
      cycles = 63; fpu_util = 50.793651; flops = 32; loads = 0;
      stores = 0; freps = 4; retired = 75 };
    { g_name = "relu 16x16"; spec = relu ~n:16 ~m:16 ();
      cycles = 281; fpu_util = 91.459075; flops = 256; loads = 0;
      stores = 0; freps = 16; retired = 341 };
    { g_name = "relu 4x8"; spec = relu ~n:4 ~m:8 ();
      cycles = 57; fpu_util = 57.894737; flops = 32; loads = 0;
      stores = 0; freps = 4; retired = 69 };
  ]

let check_golden g =
  let r = Runner.run g.spec in
  let m = r.Runner.metrics in
  check_int (g.g_name ^ " cycles") g.cycles m.Runner.cycles;
  check_float (g.g_name ^ " fpu util") g.fpu_util m.Runner.fpu_util;
  check_int (g.g_name ^ " flops") g.flops m.Runner.flop_count;
  check_int (g.g_name ^ " loads") g.loads m.Runner.loads;
  check_int (g.g_name ^ " stores") g.stores m.Runner.stores;
  check_int (g.g_name ^ " freps") g.freps m.Runner.freps;
  check_int (g.g_name ^ " retired") g.retired m.Runner.retired;
  Alcotest.(check bool) (g.g_name ^ " validates") true (r.Runner.max_abs_err < 1e-9)

let test_golden_metrics () = List.iter check_golden goldens

(* The loop-based baseline pipeline exercises the integer-core side of
   the model (branches, integer loads); pin it too. *)
let test_golden_baseline () =
  let spec = Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:50 () in
  let r = Runner.run ~flags:Mlc_transforms.Pipeline.baseline spec in
  let m = r.Runner.metrics in
  check_int "baseline cycles" 7084 m.Runner.cycles;
  check_int "baseline loads" 750 m.Runner.loads;
  check_int "baseline stores" 255 m.Runner.stores;
  check_int "baseline retired" 6831 m.Runner.retired

(* --- 2. fast engine ≡ reference engine, direct ≡ text --- *)

let all_registry_specs () =
  List.map
    (fun (e : Mlc_kernels.Registry.entry) ->
      (e.Mlc_kernels.Registry.name, e.Mlc_kernels.Registry.instantiate ~n:8 ~m:8 ~k:8 ()))
    Mlc_kernels.Registry.table1

let same_metrics name (a : Runner.metrics) (b : Runner.metrics) =
  check_int (name ^ " cycles") a.Runner.cycles b.Runner.cycles;
  check_int (name ^ " flops") a.Runner.flop_count b.Runner.flop_count;
  check_int (name ^ " loads") a.Runner.loads b.Runner.loads;
  check_int (name ^ " stores") a.Runner.stores b.Runner.stores;
  check_int (name ^ " freps") a.Runner.freps b.Runner.freps;
  check_int (name ^ " retired") a.Runner.retired b.Runner.retired;
  check_float (name ^ " util") a.Runner.fpu_util b.Runner.fpu_util

let test_engine_differential () =
  List.iter
    (fun (name, spec) ->
      let fast = Runner.run ~sim_path:Runner.Direct ~engine:Runner.Fast spec in
      let refr =
        Runner.run ~sim_path:Runner.Via_text ~engine:Runner.Reference spec
      in
      same_metrics name fast.Runner.metrics refr.Runner.metrics;
      Alcotest.(check bool)
        (name ^ " same outputs") true
        (Runner.max_abs_err fast.Runner.outputs refr.Runner.outputs = 0.0))
    (all_registry_specs ())

let test_engine_differential_lowlevel () =
  List.iter
    (fun (name, spec) ->
      let fast =
        Runner.run_lowlevel ~sim_path:Runner.Direct ~engine:Runner.Fast spec
      in
      let refr =
        Runner.run_lowlevel ~sim_path:Runner.Via_text ~engine:Runner.Reference
          spec
      in
      same_metrics name fast.Runner.metrics refr.Runner.metrics)
    [
      ("lowlevel sum32", Mlc_kernels.Lowlevel.sum32 ~n:16 ~m:16 ());
      ("lowlevel relu32", Mlc_kernels.Lowlevel.relu32 ~n:16 ~m:16 ());
      ("lowlevel matmul_t32", Mlc_kernels.Lowlevel.matmul_t32 ~n:4 ~m:8 ~k:32 ());
    ]

(* --- 3. direct emission ≡ print → parse --- *)

let equal_programs ~flags name build =
  let m = build () in
  let compiled = Mlc_transforms.Pipeline.compile ~flags ~verify_each:true m in
  let direct = Mlc_riscv.Insn_emit.emit_module m in
  let via_text =
    Program.of_asm (Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm)
  in
  Alcotest.(check bool) (name ^ " direct = text") true
    (Program.equal direct via_text)

let test_emission_equivalence () =
  List.iter
    (fun (name, (spec : Mlc_kernels.Builders.spec)) ->
      equal_programs ~flags:Mlc_transforms.Pipeline.ours name
        spec.Mlc_kernels.Builders.build)
    (all_registry_specs ())

let test_emission_equivalence_baseline () =
  (* The baseline pipeline keeps rv_scf.for loops, covering the
     guard/body/back-branch emission and its fresh-label naming. *)
  List.iter
    (fun (name, (spec : Mlc_kernels.Builders.spec)) ->
      equal_programs ~flags:Mlc_transforms.Pipeline.baseline name
        spec.Mlc_kernels.Builders.build)
    (all_registry_specs ())

(* --- 4. unit semantics --- *)

let run_asm ?(setup = fun (_ : Machine.t) -> ()) ?trace_cap ?(trace = false) asm =
  let program = Program.of_asm (Asm_parse.parse asm) in
  let machine = Machine.create ~trace ?trace_cap () in
  setup machine;
  let outcome = Machine.run machine program ~entry:"main" in
  (machine, outcome)

let test_fmv_w_x_packs_both_lanes () =
  (* fmv.w.x carries a 32-bit payload; the simulator replicates it into
     both packed-SIMD lanes, matching fcvt.s.w and the f32 scalar ABI. *)
  let m, _ =
    run_asm "main:\n    li t0, 0x3fc00000\n    fmv.w.x ft3, t0\n    ret"
  in
  Alcotest.(check int64) "both lanes carry the payload" 0x3fc000003fc00000L
    (Machine.get_freg_raw m 3);
  (* fmv.d.x moves the bits unchanged. *)
  let m, _ =
    run_asm "main:\n    li t0, 0x3fc00000\n    fmv.d.x ft3, t0\n    ret"
  in
  Alcotest.(check int64) "fmv.d.x raw bits" 0x3fc00000L (Machine.get_freg_raw m 3)

let test_trace_ring_bound () =
  let asm =
    "main:\n    li t0, 1\n    li t1, 2\n    li t2, 3\n    li t3, 4\n\
    \    li t4, 5\n    li t5, 6\n    ret"
  in
  let m, _ = run_asm ~trace:true ~trace_cap:4 asm in
  let lines = Machine.trace m in
  check_int "ring keeps last trace_cap entries" 4 (List.length lines);
  (* Oldest retained entry is the 4th-from-last instruction. *)
  Alcotest.(check bool) "oldest retained is li t3" true
    (String.length (List.hd lines) > 0
    && String.ends_with ~suffix:"li t3, 4" (List.hd lines));
  Alcotest.(check bool) "newest retained is ret" true
    (String.ends_with ~suffix:"ret" (List.nth lines 3));
  (* An unbounded-enough cap keeps everything. *)
  let m, _ = run_asm ~trace:true asm in
  check_int "default cap keeps all" 7 (List.length (Machine.trace m))

(* A fully-streamed FREP body (reads ft0/ft1, writes ft2) takes the
   steady-state replay; its timing must equal the reference engine's
   per-slot recurrence exactly. *)
let steady_asm n =
  Printf.sprintf
    {|main:
    li t0, 0
    scfgwi t0, 8
    li t0, %d
    scfgwi t0, 16
    li t0, 8
    scfgwi t0, 48
    scfgwi a0, 192
    li t0, 0
    scfgwi t0, 9
    li t0, %d
    scfgwi t0, 17
    li t0, 8
    scfgwi t0, 49
    scfgwi a1, 193
    li t0, 0
    scfgwi t0, 10
    li t0, %d
    scfgwi t0, 18
    li t0, 8
    scfgwi t0, 50
    scfgwi a2, 226
    csrsi 0x7c0, 1
    li t1, %d
    frep.o t1, 1, 0, 0
    fadd.d ft2, ft0, ft1
    csrci 0x7c0, 1
    ret|}
    (n - 1) (n - 1) (n - 1) (n - 1)

let test_frep_steady_state () =
  let n = 64 in
  let base = Mem.tcdm_base in
  let setup (m : Machine.t) =
    for i = 0 to n - 1 do
      Mem.store_f64 m.Machine.mem (base + (8 * i)) (float_of_int i);
      Mem.store_f64 m.Machine.mem (base + 1024 + (8 * i)) (float_of_int (2 * i))
    done;
    Machine.set_ireg m 10 (Int64.of_int base);
    Machine.set_ireg m 11 (Int64.of_int (base + 1024));
    Machine.set_ireg m 12 (Int64.of_int (base + 2048))
  in
  let asm = steady_asm n in
  let fast_m, fast = run_asm ~setup asm in
  let program = Program.of_asm (Asm_parse.parse asm) in
  let ref_m = Machine.create () in
  setup ref_m;
  let refr = Machine.run_reference ref_m program ~entry:"main" in
  check_int "steady cycles = reference" refr.Machine.perf.Machine.cycles
    fast.Machine.perf.Machine.cycles;
  check_int "steady retired = reference" refr.Machine.perf.Machine.retired
    fast.Machine.perf.Machine.retired;
  check_int "steady fpu_busy = reference" refr.Machine.perf.Machine.fpu_busy
    fast.Machine.perf.Machine.fpu_busy;
  check_int "steady stream traffic = reference"
    refr.Machine.perf.Machine.stream_writes
    fast.Machine.perf.Machine.stream_writes;
  (* Functional results identical too. *)
  for i = 0 to n - 1 do
    check_float "streamed sum"
      (Mem.load_f64 ref_m.Machine.mem (base + 2048 + (8 * i)))
      (Mem.load_f64 fast_m.Machine.mem (base + 2048 + (8 * i)))
  done;
  (* And the replay is busy every cycle: n slots, one per cycle. *)
  Alcotest.(check bool) "replay is stall-free" true
    (fast.Machine.perf.Machine.fpu_busy = n)

let suite =
  [
    ( "perf_model",
      [
        Alcotest.test_case "golden metrics" `Quick test_golden_metrics;
        Alcotest.test_case "golden baseline metrics" `Quick test_golden_baseline;
        Alcotest.test_case "fast = reference (registry)" `Quick
          test_engine_differential;
        Alcotest.test_case "fast = reference (lowlevel)" `Quick
          test_engine_differential_lowlevel;
        Alcotest.test_case "direct emission = text round-trip" `Quick
          test_emission_equivalence;
        Alcotest.test_case "direct emission = text (baseline)" `Quick
          test_emission_equivalence_baseline;
        Alcotest.test_case "fmv.w.x packs both lanes" `Quick
          test_fmv_w_x_packs_both_lanes;
        Alcotest.test_case "trace ring bound" `Quick test_trace_ring_bound;
        Alcotest.test_case "frep steady-state fast path" `Quick
          test_frep_steady_state;
      ] );
  ]
