(* Tests for the serving layer (PR 8): the JSON codec and frame
   protocol, deterministic fault injection, and the snitchd engine run
   in-process over real Unix sockets — round trips, idempotent retries,
   worker-crash supervision, deadlines, truncated-write recovery,
   overload shedding and rejection, disk-cache bit-identity across a
   simulated restart, and the qcheck property that a run cancelled at
   any cooperative checkpoint leaves the cache such that an identical
   retry is bit-identical to a never-cancelled run. *)

module Json = Mlc_serve.Json
module Fault = Mlc_serve.Fault
module P = Mlc_serve.Protocol
module Server = Mlc_serve.Server
module Client = Mlc_serve.Client
module Cache = Mlc_parallel.Cache

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* Sandbox the crash bundles this suite provokes. *)
let () =
  Mlc_diag.Crash_bundle.set_dir
    (Filename.concat (Filename.get_temp_dir_name ()) "mlc-serve-test-bundles")

(* --- JSON codec ------------------------------------------------------ *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "with \"quotes\", a \\ and a \ttab");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("fi", Json.Float 3.0);
        ("b", Json.Bool true);
        ("nul", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Bool false ]);
        ("obj", Json.Obj [ ("nested", Json.Arr []) ]);
      ]
  in
  Alcotest.(check bool) "print/parse round trip" true
    (Json.of_string (Json.to_string v) = v);
  (* Canonical printing: integral floats keep their ".0" so they
     re-parse as Float, and control characters escape as \uXXXX. *)
  Alcotest.(check string) "integral float keeps .0" "{\"f\":3.0}"
    (Json.to_string (Json.Obj [ ("f", Json.Float 3.0) ]));
  Alcotest.(check bool) "whitespace tolerated on parse" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  "
    = Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Int 2 ]) ])

let test_json_errors () =
  let bad s =
    match Json.of_string s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "trailing garbage rejected" true (bad "{} x");
  Alcotest.(check bool) "unterminated string rejected" true (bad "\"abc");
  Alcotest.(check bool) "bare word rejected" true (bad "bogus");
  Alcotest.(check bool) "unclosed object rejected" true (bad "{\"a\":1")

let prop_json_round_trip =
  let gen =
    QCheck.Gen.(
      sized_size (int_bound 3) (fix (fun self n ->
          let scalar =
            oneof
              [
                map (fun i -> Json.Int i) small_signed_int;
                map (fun s -> Json.Str s) (string_size (int_bound 8));
                map (fun b -> Json.Bool b) bool;
                return Json.Null;
                map
                  (fun f -> Json.Float (Float.of_int f /. 8.))
                  small_signed_int;
              ]
          in
          if n = 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun xs -> Json.Arr xs) (list_size (int_bound 4) (self (n - 1)));
                map
                  (fun kvs ->
                    (* object keys must be unique for = comparison *)
                    Json.Obj
                      (List.mapi
                         (fun i v -> (Printf.sprintf "k%d" i, v))
                         kvs))
                  (list_size (int_bound 4) (self (n - 1)));
              ])))
  in
  QCheck.Test.make ~name:"json print/parse round trips" ~count:200
    (QCheck.make ~print:Json.to_string gen)
    (fun v -> Json.of_string (Json.to_string v) = v)

(* --- framing --------------------------------------------------------- *)

let test_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      P.write_frame a "hello";
      P.write_frame a "";
      P.write_frame a (String.make 100_000 'x');
      Alcotest.(check bool) "frame 1" true (P.read_frame b = `Frame "hello");
      Alcotest.(check bool) "empty frame" true (P.read_frame b = `Frame "");
      Alcotest.(check bool) "large frame" true
        (P.read_frame b = `Frame (String.make 100_000 'x'));
      (* A truncated write must surface as a torn frame, not data. *)
      P.write_frame ~truncate:true a "truncated payload";
      Unix.close a;
      Alcotest.(check bool) "torn frame raises" true
        (match P.read_frame b with
        | exception P.Protocol_error _ -> true
        | _ -> false))

let test_frame_eof_clean () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  Fun.protect
    ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Alcotest.(check bool) "EOF at frame boundary is `Closed" true
        (P.read_frame b = `Closed))

(* --- fault injection ------------------------------------------------- *)

let test_fault_determinism () =
  Fault.reset ();
  Fun.protect ~finally:Fault.reset (fun () ->
      Fault.arm "crash@2,trunc@3";
      Fault.hit Fault.Worker_crash;
      Alcotest.(check bool) "ordinal 2 fires" true
        (match Fault.hit Fault.Worker_crash with
        | exception Fault.Injected _ -> true
        | () -> false);
      Fault.hit Fault.Worker_crash;
      Alcotest.(check int) "hits counted" 3 (Fault.hits Fault.Worker_crash);
      Alcotest.(check bool) "trunc 1st" false (Fault.fires Fault.Truncated_write);
      Alcotest.(check bool) "trunc 2nd" false (Fault.fires Fault.Truncated_write);
      Alcotest.(check bool) "trunc 3rd fires" true
        (Fault.fires Fault.Truncated_write);
      Alcotest.(check (list string)) "firing log" [ "crash@2"; "trunc@3" ]
        (Fault.fired ());
      Alcotest.(check bool) "bad spec rejected" true
        (match Fault.arm "bogus" with
        | exception Invalid_argument _ -> true
        | () -> false);
      Fault.reset ())

(* --- the daemon, in process ------------------------------------------ *)

let next_port = ref 0

let with_server ?(jobs = 2) ?(queue_max = 64) ?(shed_at = 64)
    ?(default_deadline_ms = 60_000) f =
  incr next_port;
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mlc-serve-test-%d-%d.sock" (Unix.getpid ()) !next_port)
  in
  let config =
    {
      Server.default_config with
      Server.socket_path;
      jobs;
      queue_max;
      shed_at;
      default_deadline_ms;
    }
  in
  let server = Server.create ~config () in
  let dom = Domain.spawn (fun () -> Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      ignore (Domain.join dom);
      Fault.reset ())
    (fun () -> f ~socket_path ~server)

let run_req ?(id = "r1") ?(kernel = "matmul") ?(flow = "ours")
    ?(deadline_ms = 0) ?(op = P.Run) () =
  {
    P.default_request with
    P.id;
    op;
    kernel;
    n = 4;
    m = 4;
    k = 4;
    flow;
    deadline_ms;
  }

let body_int key (r : P.response) =
  match Json.int key (Json.Obj r.P.body) with
  | Some i -> i
  | None -> Alcotest.failf "response lacks int field %s" key

let stats_int key server =
  match Json.int key (Json.Obj (Server.stats_body server)) with
  | Some i -> i
  | None -> Alcotest.failf "stats lack %s" key

let test_round_trip () =
  with_server (fun ~socket_path ~server:_ ->
      let client = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let { Client.response; retries } =
            Client.request client (run_req ())
          in
          Alcotest.(check bool) "ok" true (response.P.status = P.Ok_);
          Alcotest.(check int) "no retries needed" 0 retries;
          Alcotest.(check bool) "cycles positive" true
            (body_int "cycles" response > 0)))

let test_idempotency () =
  with_server (fun ~socket_path ~server ->
      let client = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let r1 = (Client.request client (run_req ~id:"dup" ())).Client.response in
          let r2 = (Client.request client (run_req ~id:"dup" ())).Client.response in
          Alcotest.(check string) "bit-identical replay (stable core)"
            (P.stable_core r1) (P.stable_core r2);
          Alcotest.(check int) "executed exactly once" 1
            (stats_int "requests" server);
          Alcotest.(check int) "replay counted" 1 (stats_int "idem_hits" server);
          (* Same id, different payload: a client bug, not a replay. *)
          let r3 =
            (Client.request client (run_req ~id:"dup" ~kernel:"relu" ()))
              .Client.response
          in
          Alcotest.(check bool) "payload mismatch rejected" true
            (r3.P.status = P.Error_ && not r3.P.transient)))

let test_worker_crash_supervised () =
  with_server (fun ~socket_path ~server ->
      Fault.arm "crash@1";
      let client = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let { Client.response; retries } =
            Client.request client (run_req ~id:"crashy" ())
          in
          Alcotest.(check bool) "retry recovered" true
            (response.P.status = P.Ok_);
          Alcotest.(check bool) "at least one retry" true (retries >= 1);
          Alcotest.(check int) "injected crash surfaced as error" 1
            (stats_int "errors" server);
          Alcotest.(check bool) "fault logged" true
            (List.mem "crash@1" (Fault.fired ()))))

let test_deadline_cancellation () =
  with_server (fun ~socket_path ~server ->
      (* Every attempt sleeps 150 ms before reaching the checkpoints, so
         a 50 ms deadline cancels deterministically; the fourth attempt
         runs unimpeded. *)
      Fault.arm "slow@1:0.15,slow@2:0.15,slow@3:0.15";
      let client = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let { Client.response; retries } =
            Client.request client (run_req ~id:"late" ~deadline_ms:50 ())
          in
          Alcotest.(check bool) "eventually ok" true
            (response.P.status = P.Ok_);
          Alcotest.(check bool) "retried past the slow attempts" true
            (retries >= 3);
          Alcotest.(check bool) "deadline cancellations counted" true
            (stats_int "deadline" server >= 1)))

let test_truncated_write_retry () =
  with_server (fun ~socket_path ~server ->
      Fault.arm "trunc@1";
      let client = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let { Client.response; retries } =
            Client.request client (run_req ~id:"torn" ())
          in
          Alcotest.(check bool) "ok after torn frame" true
            (response.P.status = P.Ok_);
          Alcotest.(check bool) "reconnect retry happened" true (retries >= 1);
          (* The retry replays the memoized response: executed once. *)
          Alcotest.(check int) "executed exactly once" 1
            (stats_int "requests" server)))

let test_shed_and_reject () =
  (* One worker, one admission slot, shedding from depth 0: the first
     request (slowed so it occupies the slot) sheds to baseline; a
     second concurrent request is rejected with a retry hint. *)
  with_server ~jobs:1 ~queue_max:1 ~shed_at:0 (fun ~socket_path ~server ->
      Fault.arm "slow@1:0.4";
      let c1 = Client.create ~socket_path () in
      let c2 = Client.create ~socket_path () in
      Fun.protect
        ~finally:(fun () ->
          Client.close c1;
          Client.close c2)
        (fun () ->
          let d =
            Domain.spawn (fun () ->
                Client.request c1 (run_req ~id:"slowpoke" ()))
          in
          Unix.sleepf 0.1;
          (* the slot is held; a bare rpc must be rejected *)
          let rejected = Client.rpc_once c2 (run_req ~id:"turned-away" ()) in
          Alcotest.(check bool) "rejected while full" true
            (rejected.P.status = P.Rejected && rejected.P.transient);
          Alcotest.(check bool) "retry hint present" true
            (Json.int "retry_after_ms" (Json.Obj rejected.P.body) <> None);
          let r1 = (Domain.join d).Client.response in
          Alcotest.(check bool) "shed request still ok" true
            (r1.P.status = P.Ok_);
          Alcotest.(check bool) "shed to the baseline rung" true
            (Json.str "flow" (Json.Obj r1.P.body) = Some "baseline"
            && Json.bool "shed" (Json.Obj r1.P.body) = Some true);
          Alcotest.(check bool) "shed counted" true
            (stats_int "shed" server >= 1);
          Alcotest.(check bool) "rejection counted" true
            (stats_int "rejected" server >= 1)))

let test_restart_bit_identity () =
  (* A daemon "restart" inside one process: new server, same disk cache
     directory, memory tier dropped — the warm flood must answer with
     bit-identical artifacts and compile nothing. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-serve-test-cache"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_disk_dir None;
      rm_rf dir)
    (fun () ->
      Cache.set_disk_dir (Some dir);
      Cache.clear_memory ();
      Mlc.Compile_cache.clear_programs ();
      let flood socket_path =
        Client.flood ~socket_path ~jobs:2 ~seed:5 ~count:10 ()
      in
      let cold =
        with_server (fun ~socket_path ~server:_ -> flood socket_path)
      in
      Alcotest.(check int) "cold flood all answered" 10
        cold.Client.answered;
      (* restart: fresh server state, cold memory, warm disk *)
      Cache.clear_memory ();
      Mlc.Compile_cache.clear_programs ();
      Mlc.Runner.reset_phases ();
      let warm =
        with_server (fun ~socket_path ~server:_ -> flood socket_path)
      in
      Alcotest.(check string) "restart serves bit-identical artifacts"
        cold.Client.digest warm.Client.digest;
      let ph = Mlc.Runner.phases () in
      Alcotest.(check int) "warm restart compiles nothing" 0
        ph.Mlc.Runner.compile_n)

let test_cache_corruption_recovery () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "mlc-serve-test-corrupt"
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Cache.set_disk_dir None;
      rm_rf dir)
    (fun () ->
      Cache.set_disk_dir (Some dir);
      Cache.clear_memory ();
      Mlc.Compile_cache.clear_programs ();
      Cache.reset_stats ();
      let compile id =
        with_server (fun ~socket_path ~server:_ ->
            let client = Client.create ~socket_path () in
            Fun.protect
              ~finally:(fun () -> Client.close client)
              (fun () ->
                (Client.request client (run_req ~id ~op:P.Compile ()))
                  .Client.response))
      in
      let cold = compile "c1" in
      Alcotest.(check bool) "cold compile ok" true (cold.P.status = P.Ok_);
      (* Scribble on the stored artifacts, drop the memory tier: the
         daemon must quarantine and recompute, bit-identically. *)
      Alcotest.(check bool) "entries corrupted" true
        (Fault.corrupt_cache_entries ~dir ~n:10 > 0);
      Cache.clear_memory ();
      Mlc.Compile_cache.clear_programs ();
      let recovered = compile "c2" in
      Alcotest.(check bool) "recovered compile ok" true
        (recovered.P.status = P.Ok_);
      Alcotest.(check bool) "artifact identical after quarantine" true
        (Json.str "asm_md5" (Json.Obj cold.P.body)
        = Json.str "asm_md5" (Json.Obj recovered.P.body));
      Alcotest.(check bool) "quarantine counted" true
        (Cache.quarantined () > 0))

(* --- satellite 3: cancellation at any checkpoint is artifact-safe ---- *)

(* Cancel a cached run at the [n]th cooperative checkpoint, then retry
   without cancellation: the retry must be bit-identical to a run that
   was never cancelled (computed on a pristine cache). Exercises every
   checkpoint the runner emits ("expected", "compile:<rung>",
   "sim:<rung>") across both cache tiers. *)
exception Cut

let prop_cancel_then_retry_bit_identical =
  QCheck.Test.make
    ~name:"cancelled request retries to a bit-identical artifact" ~count:12
    QCheck.(
      make
        ~print:(fun (cut, kernel) -> Printf.sprintf "cut=%d kernel=%s" cut kernel)
        Gen.(pair (int_bound 3) (oneofl [ "matmul"; "relu"; "sum" ])))
    (fun (cut, kernel) ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ()) "mlc-serve-test-cancel"
      in
      rm_rf dir;
      Fun.protect
        ~finally:(fun () ->
          Cache.set_disk_dir None;
          rm_rf dir)
        (fun () ->
          let spec =
            (Option.get (Mlc_kernels.Registry.by_short_name kernel))
              .Mlc_kernels.Registry.instantiate ~n:4 ~m:4 ~k:4 ()
          in
          let fingerprint (r : Mlc.Runner.run_result) =
            ( r.Mlc.Runner.asm,
              r.Mlc.Runner.metrics,
              List.map (Array.map Int64.bits_of_float) r.Mlc.Runner.outputs )
          in
          (* reference: pristine cache, never cancelled *)
          Cache.set_disk_dir (Some dir);
          Cache.clear_memory ();
          Mlc.Compile_cache.clear_programs ();
          let reference = fingerprint (Mlc.Runner.run spec) in
          (* victim: pristine cache again, cancelled at checkpoint [cut] *)
          rm_rf dir;
          Cache.set_disk_dir (Some dir);
          Cache.clear_memory ();
          Mlc.Compile_cache.clear_programs ();
          let seen = ref 0 in
          let cancelled =
            match
              Mlc.Runner.run
                ~on_phase:(fun _ ->
                  if !seen = cut then raise Cut;
                  incr seen)
                spec
            with
            | (_ : Mlc.Runner.run_result) -> false
            | exception Cut -> true
          in
          (* checkpoints past the run's count: nothing to cancel *)
          if not cancelled then QCheck.assume_fail ()
          else begin
            let retry = fingerprint (Mlc.Runner.run spec) in
            if retry <> reference then
              QCheck.Test.fail_reportf
                "retry after cancellation at checkpoint %d differs" cut;
            true
          end))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "json round trip" `Quick test_json_round_trip;
        Alcotest.test_case "json malformed inputs" `Quick test_json_errors;
        QCheck_alcotest.to_alcotest prop_json_round_trip;
        Alcotest.test_case "length framing" `Quick test_framing;
        Alcotest.test_case "clean EOF" `Quick test_frame_eof_clean;
        Alcotest.test_case "fault injection is ordinal-deterministic" `Quick
          test_fault_determinism;
        Alcotest.test_case "daemon round trip" `Quick test_round_trip;
        Alcotest.test_case "idempotent retries execute once" `Quick
          test_idempotency;
        Alcotest.test_case "worker crash is supervised" `Quick
          test_worker_crash_supervised;
        Alcotest.test_case "deadline cancels at checkpoints" `Quick
          test_deadline_cancellation;
        Alcotest.test_case "truncated write recovers by replay" `Quick
          test_truncated_write_retry;
        Alcotest.test_case "overload sheds then rejects" `Quick
          test_shed_and_reject;
        Alcotest.test_case "restart over warm disk cache is bit-identical"
          `Quick test_restart_bit_identity;
        Alcotest.test_case "cache corruption quarantined and recomputed"
          `Quick test_cache_corruption_recovery;
        QCheck_alcotest.to_alcotest prop_cancel_then_retry_bit_identical;
      ] );
  ]
