(* End-to-end differential tests: for every kernel, pipeline
   configuration and a range of shapes, the simulator output of the
   compiled code must match the reference interpreter (within FP
   reassociation tolerance — the compiler fuses mul+add into fmadd and
   the baselines do not, so bit equality is not expected).

   These are the repository's strongest correctness guarantee: they
   exercise the whole stack (lowering, register allocation, emission,
   assembler, simulator) at once. *)

open Mlc_transforms

let tolerance (spec : Mlc_kernels.Builders.spec) =
  (* Scale with reduction length; generous but far below any real bug. *)
  let flops = float_of_int spec.Mlc_kernels.Builders.flops in
  1e-12 *. Float.max 1.0 flops

let check_run ?(flags = Pipeline.ours) name spec =
  let r = Mlc.Runner.run ~flags spec in
  Alcotest.(check bool)
    (Printf.sprintf "%s: |err| %g within tolerance" name r.Mlc.Runner.max_abs_err)
    true
    (r.Mlc.Runner.max_abs_err <= tolerance spec);
  r

let flows =
  [ ("ours", Pipeline.ours); ("mlir", Pipeline.mlir); ("clang", Pipeline.clang) ]

(* One named test case per (kernel, flow) pair. *)
let kernel_flow_cases =
  List.concat_map
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.map
        (fun (fname, flags) ->
          let name =
            Printf.sprintf "%s via %s" e.Mlc_kernels.Registry.name fname
          in
          Alcotest.test_case name `Quick (fun () ->
              let spec = e.Mlc_kernels.Registry.instantiate ~n:4 ~m:8 ~k:4 () in
              ignore (check_run ~flags name spec)))
        flows)
    Mlc_kernels.Registry.table1

(* One named test case per Table 3 ablation stage. *)
let ablation_stage_cases =
  List.map
    (fun (stage, flags) ->
      Alcotest.test_case (Printf.sprintf "ablation %s" stage) `Quick (fun () ->
          let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:5 ~k:12 () in
          ignore (check_run ~flags stage spec)))
    Pipeline.ablation_stages

(* One named test case per matmul shape. *)
let matmul_shape_cases =
  List.map
    (fun (n, m, k) ->
      let name = Printf.sprintf "matmul %dx%dx%d" n m k in
      Alcotest.test_case name `Quick (fun () ->
          ignore (check_run name (Mlc_kernels.Builders.matmul ~n ~m ~k ()))))
    [ (1, 1, 1); (1, 5, 200); (3, 7, 5); (8, 8, 8); (2, 16, 32); (5, 3, 2) ]

(* One named test case per window-kernel shape. *)
let window_shape_cases =
  List.concat_map
    (fun (n, m) ->
      List.map
        (fun (kname, mk) ->
          let name = Printf.sprintf "%s %dx%d" kname n m in
          Alcotest.test_case name `Quick (fun () ->
              ignore (check_run name (mk ~n ~m ()))))
        [
          ("conv", fun ~n ~m () -> Mlc_kernels.Builders.conv3x3 ~n ~m ());
          ("max_pool", fun ~n ~m () -> Mlc_kernels.Builders.max_pool ~n ~m ());
          ("sum_pool", fun ~n ~m () -> Mlc_kernels.Builders.sum_pool ~n ~m ());
        ])
    [ (1, 1); (4, 4); (3, 5); (8, 12) ]

let test_parallel_kernels_reach_high_utilization () =
  (* Paper Figure 10: Sum / Fill / ReLU approach 100% as sizes grow. *)
  List.iter
    (fun spec ->
      let r = check_run spec.Mlc_kernels.Builders.kernel_name spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s util %.1f%% > 85%%"
           spec.Mlc_kernels.Builders.kernel_name r.Mlc.Runner.metrics.fpu_util)
        true
        (r.Mlc.Runner.metrics.fpu_util > 85.0))
    [
      Mlc_kernels.Builders.fill ~n:32 ~m:32 ();
      Mlc_kernels.Builders.sum ~n:32 ~m:32 ();
      Mlc_kernels.Builders.relu ~n:32 ~m:32 ();
    ]

let test_reduction_kernels_in_paper_band () =
  (* Paper §4.4: reduction kernels stay within 70-80%+ as width grows. *)
  List.iter
    (fun (name, spec, lo) ->
      let r = check_run name spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s util %.1f%% >= %.0f%%" name r.Mlc.Runner.metrics.fpu_util lo)
        true
        (r.Mlc.Runner.metrics.fpu_util >= lo))
    [
      ("conv", Mlc_kernels.Builders.conv3x3 ~n:16 ~m:16 (), 70.0);
      ("max_pool", Mlc_kernels.Builders.max_pool ~n:16 ~m:16 (), 70.0);
      ("matmul", Mlc_kernels.Builders.matmul ~n:8 ~m:16 ~k:16 (), 80.0);
    ]

let test_ours_beats_baselines () =
  (* Figure 10's headline: the multi-level backend dominates both
     baseline flows on every kernel. *)
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      let cycles flags =
        let spec = e.Mlc_kernels.Registry.instantiate ~n:8 ~m:8 ~k:8 () in
        (Mlc.Runner.run ~flags spec).Mlc.Runner.metrics.cycles
      in
      let ours = cycles Pipeline.ours in
      let mlir = cycles Pipeline.mlir in
      let clang = cycles Pipeline.clang in
      Alcotest.(check bool)
        (Printf.sprintf "%s: ours %d < mlir %d and clang %d"
           e.Mlc_kernels.Registry.name ours mlir clang)
        true
        (ours < mlir && ours < clang))
    Mlc_kernels.Registry.table1

let test_ablation_is_monotone_on_cycles () =
  (* Each Table 3 stage must not be slower than the previous one (modulo
     a small tolerance for the FRep/Fuse-Fill plateau). *)
  let cycles =
    List.map
      (fun (_, flags) ->
        let spec = Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:200 () in
        (Mlc.Runner.run ~flags spec).Mlc.Runner.metrics.cycles)
      Pipeline.ablation_stages
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "stage does not regress (%d -> %d)" a b)
        true
        (b <= a + (a / 20));
      check rest
    | _ -> ()
  in
  check cycles

let test_table3_memory_ops_eliminated () =
  (* The signature Table 3 columns: loads 3000 -> 1000 -> 5 -> 5 -> 0 -> 0. *)
  let loads_stores =
    List.map
      (fun (_, flags) ->
        let spec = Mlc_kernels.Builders.matmul ~n:1 ~m:5 ~k:200 () in
        let r = Mlc.Runner.run ~flags spec in
        (r.Mlc.Runner.metrics.loads, r.Mlc.Runner.metrics.stores))
      Pipeline.ablation_stages
  in
  Alcotest.(check (list (pair int int)))
    "dynamic memory operations per stage"
    [ (3000, 1005); (1000, 1000); (5, 5); (5, 5); (0, 0); (0, 0) ]
    loads_stores

let test_fp32_scalar_pipeline () =
  (* The compiler pipeline also handles f32 kernels (scalar fadd.s /
     flw). Tolerance scales for single precision. *)
  List.iter
    (fun spec ->
      let r = Mlc.Runner.run spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s f32: |err| %g" spec.Mlc_kernels.Builders.kernel_name
           r.Mlc.Runner.max_abs_err)
        true
        (r.Mlc.Runner.max_abs_err
        <= 1e-4 *. Float.max 1.0 (float_of_int spec.Mlc_kernels.Builders.flops)))
    [
      Mlc_kernels.Builders.sum ~elem:Mlc_ir.Ty.F32 ~n:4 ~m:4 ();
      Mlc_kernels.Builders.relu ~elem:Mlc_ir.Ty.F32 ~n:4 ~m:4 ();
      Mlc_kernels.Builders.matmul ~elem:Mlc_ir.Ty.F32 ~n:2 ~m:4 ~k:6 ();
      Mlc_kernels.Builders.max_pool ~elem:Mlc_ir.Ty.F32 ~n:3 ~m:4 ();
    ]

(* Paper Table 2 samples four shape sizes per kernel and reports one
   register count: the counts must be shape-invariant. *)
let test_register_counts_shape_invariant () =
  List.iter
    (fun (name, shapes) ->
      let counts =
        List.map
          (fun (n, m, k) ->
            let e = Option.get (Mlc_kernels.Registry.by_short_name name) in
            let spec = e.Mlc_kernels.Registry.instantiate ~n ~m ~k () in
            let r = Mlc.Runner.run spec in
            let rep = Option.get r.Mlc.Runner.report in
            (rep.Mlc_regalloc.Allocator.fp_count,
             rep.Mlc_regalloc.Allocator.int_count))
          shapes
      in
      match counts with
      | first :: rest ->
        List.iter
          (fun c ->
            Alcotest.(check (pair int int))
              (Printf.sprintf "%s: register counts shape-invariant" name)
              first c)
          rest
      | [] -> ())
    [
      ("sum", [ (4, 4, 0); (8, 8, 0); (16, 4, 0); (4, 32, 0) ]);
      ("relu", [ (4, 4, 0); (8, 8, 0); (16, 4, 0); (4, 32, 0) ]);
      ("fill", [ (4, 4, 0); (8, 8, 0); (16, 4, 0); (4, 32, 0) ]);
      (* Same interleave factor across shapes (the unroll factor — and
         with it the accumulator count — legitimately tracks the width). *)
      ("sum_pool", [ (4, 4, 0); (8, 4, 0); (12, 4, 0); (16, 4, 0) ]);
    ]

let test_determinism () =
  let run () =
    let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:8 () in
    let r = Mlc.Runner.run spec in
    (r.Mlc.Runner.metrics.cycles, r.Mlc.Runner.asm)
  in
  let c1, a1 = run () in
  let c2, a2 = run () in
  Alcotest.(check int) "cycle counts deterministic" c1 c2;
  Alcotest.(check string) "assembly deterministic" a1 a2

(* Property: random shapes stay correct end-to-end. *)
let arb_shape =
  QCheck.make
    ~print:(fun (n, m, k) -> Printf.sprintf "%dx%dx%d" n m k)
    QCheck.Gen.(triple (int_range 1 6) (int_range 1 12) (int_range 1 24))

let prop_matmul_random_shapes =
  QCheck.Test.make ~name:"matmul correct on random shapes" ~count:15 arb_shape
    (fun (n, m, k) ->
      let spec = Mlc_kernels.Builders.matmul ~n ~m ~k () in
      let r = Mlc.Runner.run spec in
      r.Mlc.Runner.max_abs_err <= tolerance spec)

let prop_conv_random_shapes =
  QCheck.Test.make ~name:"conv3x3 correct on random shapes" ~count:10
    (QCheck.make
       ~print:(fun (n, m) -> Printf.sprintf "%dx%d" n m)
       QCheck.Gen.(pair (int_range 1 10) (int_range 1 10)))
    (fun (n, m) ->
      let spec = Mlc_kernels.Builders.conv3x3 ~n ~m () in
      let r = Mlc.Runner.run spec in
      r.Mlc.Runner.max_abs_err <= tolerance spec)

let prop_sum_random_shapes =
  QCheck.Test.make ~name:"sum correct on random shapes" ~count:15
    (QCheck.make
       ~print:(fun (n, m) -> Printf.sprintf "%dx%d" n m)
       QCheck.Gen.(pair (int_range 1 16) (int_range 1 16)))
    (fun (n, m) ->
      let spec = Mlc_kernels.Builders.sum ~n ~m () in
      let r = Mlc.Runner.run spec in
      r.Mlc.Runner.max_abs_err = 0.0)

let suite =
  [
    ("pipeline: kernel x flow", kernel_flow_cases);
    ("pipeline: ablation stages", ablation_stage_cases);
    ("pipeline: matmul shapes", matmul_shape_cases);
    ("pipeline: window-kernel shapes", window_shape_cases);
    ( "pipeline",
      [
        Alcotest.test_case "parallel kernels ~100%" `Quick
          test_parallel_kernels_reach_high_utilization;
        Alcotest.test_case "reduction kernels 70-80%+" `Quick
          test_reduction_kernels_in_paper_band;
        Alcotest.test_case "ours beats baselines" `Slow test_ours_beats_baselines;
        Alcotest.test_case "ablation monotone" `Slow test_ablation_is_monotone_on_cycles;
        Alcotest.test_case "Table 3 memory ops" `Slow test_table3_memory_ops_eliminated;
        Alcotest.test_case "f32 scalar pipeline" `Quick test_fp32_scalar_pipeline;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "Table 2 shape invariance" `Slow
          test_register_counts_shape_invariant;
        QCheck_alcotest.to_alcotest prop_matmul_random_shapes;
        QCheck_alcotest.to_alcotest prop_conv_random_shapes;
        QCheck_alcotest.to_alcotest prop_sum_random_shapes;
      ] );
  ]
