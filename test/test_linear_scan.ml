(* Tests for the classical linear-scan allocator with spilling — the
   paper's implicit comparator (§3.3) — including correctness of spill
   code under forced pressure and the spilling-cost measurement that
   motivates the spill-free design. *)

open Mlc_regalloc
open Mlc_transforms

let lscan ?int_pool ?float_pool fn =
  (Linear_scan.allocate_func ?int_pool ?float_pool fn).Linear_scan.report

let run_baseline ?int_pool ?float_pool spec =
  Mlc.Runner.run ~flags:Pipeline.baseline
    ~allocator:(lscan ?int_pool ?float_pool)
    spec

let test_correct_without_pressure () =
  let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:3 () in
  let r = run_baseline spec in
  Alcotest.(check bool)
    (Printf.sprintf "linear scan output correct (|err| %g)" r.Mlc.Runner.max_abs_err)
    true
    (r.Mlc.Runner.max_abs_err < 1e-12)

let test_correct_across_kernels () =
  List.iter
    (fun spec ->
      let r = run_baseline spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s correct under linear scan"
           spec.Mlc_kernels.Builders.kernel_name)
        true
        (r.Mlc.Runner.max_abs_err < 1e-10))
    [
      Mlc_kernels.Builders.sum ~n:4 ~m:6 ();
      Mlc_kernels.Builders.relu ~n:4 ~m:6 ();
      Mlc_kernels.Builders.max_pool ~n:3 ~m:3 ();
      Mlc_kernels.Builders.conv3x3 ~n:3 ~m:4 ();
      Mlc_kernels.Builders.matmul_t ~n:3 ~m:4 ~k:5 ();
    ]

(* Shrink the FP pool until spilling must happen; the result must remain
   correct and the spill counters must report it. *)
let test_forced_spilling_is_correct () =
  let small_float_pool = [ "ft3"; "ft4" ] in
  let spec = Mlc_kernels.Builders.conv3x3 ~n:3 ~m:4 () in
  let spilled = ref (-1) in
  let allocator fn =
    let r = Linear_scan.allocate_func ~float_pool:small_float_pool fn in
    spilled := max !spilled r.Linear_scan.spilled_classes;
    r.Linear_scan.report
  in
  let r = Mlc.Runner.run ~flags:Pipeline.baseline ~allocator spec in
  Alcotest.(check bool)
    (Printf.sprintf "correct with forced spills (|err| %g, %d spilled)"
       r.Mlc.Runner.max_abs_err !spilled)
    true
    (r.Mlc.Runner.max_abs_err < 1e-10);
  Alcotest.(check bool) "spilling actually occurred" true (!spilled > 0);
  (* Spill traffic shows up as extra memory operations. *)
  let baseline = run_baseline spec in
  let traffic m = m.Mlc.Runner.loads + m.Mlc.Runner.stores in
  Alcotest.(check bool)
    (Printf.sprintf "spills add memory traffic (%d vs %d)"
       (traffic r.Mlc.Runner.metrics) (traffic baseline.Mlc.Runner.metrics))
    true
    (traffic r.Mlc.Runner.metrics > traffic baseline.Mlc.Runner.metrics)

(* The paper's argument, measured: spilling costs cycles. *)
let test_spilling_costs_cycles () =
  let spec () = Mlc_kernels.Builders.conv3x3 ~n:4 ~m:4 () in
  let free = run_baseline (spec ()) in
  let tight =
    Mlc.Runner.run ~flags:Pipeline.baseline
      ~allocator:(lscan ~float_pool:[ "ft3"; "ft4" ])
      (spec ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "spilling is slower (%d vs %d cycles)"
       tight.Mlc.Runner.metrics.cycles free.Mlc.Runner.metrics.cycles)
    true
    (tight.Mlc.Runner.metrics.cycles > free.Mlc.Runner.metrics.cycles)

let test_rejects_streaming_kernels () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Mlc_ir.Pass.run m (Pipeline.passes Pipeline.ours);
  let fn =
    List.hd
      (Mlc_ir.Ir.collect m (fun op ->
           Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op))
  in
  Alcotest.(check bool) "streaming kernels rejected" true
    (match Linear_scan.allocate_func fn with
    | exception Linear_scan.Cannot_spill _ -> true
    | _ -> false)

let test_pools_respected () =
  let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:4 ~k:4 () in
  let int_pool = [ "t0"; "t1"; "t2"; "t3"; "a3"; "a4"; "a5"; "a6"; "a7" ] in
  let allocator fn =
    let r = Linear_scan.allocate_func ~int_pool fn in
    (* Every allocated integer register must come from the pool, the
       scratch set, or a precolored argument. *)
    List.iter
      (fun reg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s within pool/scratch/args" reg)
          true
          (List.mem reg int_pool
          || List.mem reg [ "t4"; "t5"; "t6" ]
          || List.mem reg Mlc_riscv.Reg.int_arg_regs
          || reg = "sp" || reg = "zero"))
      r.Linear_scan.report.Allocator.int_regs;
    r.Linear_scan.report
  in
  let r = Mlc.Runner.run ~flags:Pipeline.baseline ~allocator spec in
  Alcotest.(check bool) "correct" true (r.Mlc.Runner.max_abs_err < 1e-12)

(* Property: under any FP pool size that the unspillable values permit,
   linear scan produces correct code (spilling as needed). *)
let prop_random_pool_sizes =
  QCheck.Test.make ~name:"linear scan correct under random pool sizes"
    ~count:12
    (QCheck.make
       ~print:(fun (p, n, m) -> Printf.sprintf "pool=%d shape=%dx%d" p n m)
       QCheck.Gen.(triple (int_range 2 17) (int_range 1 4) (int_range 1 6)))
    (fun (pool_size, n, m) ->
      let float_pool =
        List.filteri (fun i _ -> i < pool_size) Mlc_riscv.Reg.float_pool
      in
      let spec = Mlc_kernels.Builders.conv3x3 ~n ~m () in
      match
        Mlc.Runner.run ~flags:Pipeline.baseline
          ~allocator:(lscan ~float_pool)
          spec
      with
      | r -> r.Mlc.Runner.max_abs_err < 1e-10
      | exception Linear_scan.Cannot_spill _ ->
        (* Acceptable: pressure hit an unspillable value. *)
        true)

(* Property: the structured allocator + rematerialisation either
   allocates correctly or reports honest failure — never wrong code. *)
let prop_remat_random_kernels =
  QCheck.Test.make ~name:"remat allocation correct on random shapes" ~count:12
    (QCheck.make
       ~print:(fun (n, m, k) -> Printf.sprintf "%dx%dx%d" n m k)
       QCheck.Gen.(triple (int_range 1 4) (int_range 1 8) (int_range 1 12)))
    (fun (n, m, k) ->
      let spec = Mlc_kernels.Builders.matmul_t ~n ~m ~k () in
      match Mlc.Runner.run ~flags:Pipeline.clang spec with
      | r -> r.Mlc.Runner.max_abs_err < 1e-10
      | exception Mlc_regalloc.Remat.Still_out_of_registers _ -> true)

let suite =
  [
    ( "linear_scan",
      [
        Alcotest.test_case "correct without pressure" `Quick test_correct_without_pressure;
        Alcotest.test_case "correct across kernels" `Quick test_correct_across_kernels;
        Alcotest.test_case "forced spilling correct" `Quick test_forced_spilling_is_correct;
        Alcotest.test_case "spilling costs cycles" `Quick test_spilling_costs_cycles;
        Alcotest.test_case "rejects streaming" `Quick test_rejects_streaming_kernels;
        Alcotest.test_case "pools respected" `Quick test_pools_respected;
        QCheck_alcotest.to_alcotest prop_random_pool_sizes;
        QCheck_alcotest.to_alcotest prop_remat_random_kernels;
      ] );
  ]
