(* Unit and property tests for affine expressions and maps. *)

open Mlc_ir

let check_int = Alcotest.(check int)

let test_eval_simple () =
  let e = Affine.(add (mul (dim 0) (const 4)) (dim 1)) in
  check_int "d0*4+d1 at (3,2)" 14 (Affine.eval_expr ~dims:[| 3; 2 |] ~syms:[||] e)

let test_constant_folding () =
  let e = Affine.(add (const 3) (const 4)) in
  Alcotest.(check bool) "3+4 folds" true (Affine.expr_equal e (Affine.const 7));
  let e = Affine.(mul (const 3) (const 4)) in
  Alcotest.(check bool) "3*4 folds" true (Affine.expr_equal e (Affine.const 12));
  let e = Affine.(mul (dim 0) (const 0)) in
  Alcotest.(check bool) "d0*0 folds" true (Affine.expr_equal e (Affine.const 0));
  let e = Affine.(add (dim 0) (const 0)) in
  Alcotest.(check bool) "d0+0 folds" true (Affine.expr_equal e (Affine.dim 0))

let test_floor_ceil_mod () =
  check_int "7 floordiv 2" 3
    (Affine.eval_expr ~dims:[||] ~syms:[||] Affine.(floordiv (const 7) (const 2)));
  check_int "-7 floordiv 2" (-4)
    (Affine.eval_expr ~dims:[||] ~syms:[||] Affine.(floordiv (const (-7)) (const 2)));
  check_int "7 ceildiv 2" 4
    (Affine.eval_expr ~dims:[||] ~syms:[||] Affine.(ceildiv (const 7) (const 2)));
  check_int "-7 mod 3" 2
    (Affine.eval_expr ~dims:[||] ~syms:[||] Affine.(modulo (const (-7)) (const 3)))

let test_not_affine () =
  Alcotest.check_raises "d0*d1 rejected" (Affine.Not_affine
    "multiplication of two non-constant expressions") (fun () ->
      ignore (Affine.mul (Affine.dim 0) (Affine.dim 1)))

let test_linear_form () =
  let e = Affine.(add (add (mul (dim 0) (const 5)) (dim 2)) (const 7)) in
  let d, s, c = Affine.linear_form ~num_dims:3 ~num_syms:0 e in
  Alcotest.(check (array int)) "dim coefficients" [| 5; 0; 1 |] d;
  Alcotest.(check (array int)) "sym coefficients" [||] s;
  check_int "constant" 7 c

let test_map_eval () =
  (* Conv-style map: (d0, d1, d2, d3) -> (d0 + d2, d1 + d3) *)
  let m =
    Affine.make ~num_dims:4 ~num_syms:0
      Affine.[ add (dim 0) (dim 2); add (dim 1) (dim 3) ]
  in
  Alcotest.(check (list int))
    "conv map" [ 4; 6 ]
    (Affine.eval m ~dims:[| 1; 2; 3; 4 |] ())

let test_compose () =
  (* f = (d0, d1) -> (d0 + d1); g = (d0) -> (2*d0, 3*d0);
     f.g = (d0) -> (5*d0) *)
  let f = Affine.make ~num_dims:2 ~num_syms:0 [ Affine.(add (dim 0) (dim 1)) ] in
  let g =
    Affine.make ~num_dims:1 ~num_syms:0
      Affine.[ mul (dim 0) (const 2); mul (dim 0) (const 3) ]
  in
  let fg = Affine.compose f g in
  Alcotest.(check (list int)) "composition" [ 35 ] (Affine.eval fg ~dims:[| 7 |] ())

let test_identity () =
  let m = Affine.identity 3 in
  Alcotest.(check (list int)) "identity" [ 4; 5; 6 ] (Affine.eval m ~dims:[| 4; 5; 6 |] ())

let test_drop_dims () =
  (* (d0, d1, d2) -> (d0 * 5 + d2) with d1 dropped becomes
     (d0, d1) -> (d0 * 5 + d1) *)
  let m =
    Affine.make ~num_dims:3 ~num_syms:0
      [ Affine.(add (mul (dim 0) (const 5)) (dim 2)) ]
  in
  let m' = Affine.drop_dims m [ 1 ] in
  check_int "domain shrinks" 2 m'.Affine.num_dims;
  Alcotest.(check (list int)) "results renumbered" [ 17 ] (Affine.eval m' ~dims:[| 3; 2 |] ())

let test_drop_used_dim_rejected () =
  let m = Affine.make ~num_dims:2 ~num_syms:0 [ Affine.(add (dim 0) (dim 1)) ] in
  Alcotest.(check bool) "dropping used dim raises" true
    (match Affine.drop_dims m [ 1 ] with
    | exception Mlc_diag.Diag.Diagnostic _ -> true
    | _ -> false)

let test_pp_roundtrip_examples () =
  let m =
    Affine.make ~num_dims:3 ~num_syms:0
      [ Affine.(add (mul (dim 0) (const 5)) (dim 2)); Affine.dim 1 ]
  in
  Alcotest.(check string)
    "printing" "(d0, d1, d2) -> (d0 * 5 + d2, d1)" (Affine.to_string m)

(* Property tests *)

let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ map Affine.dim (int_bound 2); map Affine.const (int_range (-8) 8) ]
          else
            frequency
              [
                (2, map Affine.dim (int_bound 2));
                (2, map Affine.const (int_range (-8) 8));
                (3, map2 Affine.add (self (n / 2)) (self (n / 2)));
                ( 2,
                  map2
                    (fun e c -> Affine.mul e (Affine.const c))
                    (self (n / 2)) (int_range (-4) 4) );
              ])
        (min n 8))

let arb_expr = QCheck.make ~print:Affine.expr_to_string gen_expr

let prop_linear_form_agrees_with_eval =
  QCheck.Test.make ~name:"linear_form agrees with eval" ~count:200 arb_expr
    (fun e ->
      let dims = [| 3; -2; 5 |] in
      let d, _, c = Affine.linear_form ~num_dims:3 ~num_syms:0 e in
      let linear_val =
        c + (d.(0) * dims.(0)) + (d.(1) * dims.(1)) + (d.(2) * dims.(2))
      in
      linear_val = Affine.eval_expr ~dims ~syms:[||] e)

let prop_add_commutes_under_eval =
  QCheck.Test.make ~name:"add commutes under eval" ~count:200
    (QCheck.pair arb_expr arb_expr) (fun (a, b) ->
      let dims = [| 2; 7; -3 |] in
      Affine.eval_expr ~dims ~syms:[||] (Affine.add a b)
      = Affine.eval_expr ~dims ~syms:[||] (Affine.add b a))

let prop_floordiv_mod_law =
  QCheck.Test.make ~name:"x = (x floordiv k)*k + (x mod k)" ~count:200
    QCheck.(pair (int_range (-100) 100) (int_range 1 12))
    (fun (x, k) ->
      let ev e = Affine.eval_expr ~dims:[||] ~syms:[||] e in
      let x' = Affine.const x and k' = Affine.const k in
      x = (ev (Affine.floordiv x' k') * k) + ev (Affine.modulo x' k'))

let suite =
  [
    ( "affine",
      [
        Alcotest.test_case "eval simple" `Quick test_eval_simple;
        Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "floor/ceil/mod" `Quick test_floor_ceil_mod;
        Alcotest.test_case "non-affine rejected" `Quick test_not_affine;
        Alcotest.test_case "linear form" `Quick test_linear_form;
        Alcotest.test_case "map eval" `Quick test_map_eval;
        Alcotest.test_case "compose" `Quick test_compose;
        Alcotest.test_case "identity" `Quick test_identity;
        Alcotest.test_case "drop dims" `Quick test_drop_dims;
        Alcotest.test_case "drop used dim rejected" `Quick test_drop_used_dim_rejected;
        Alcotest.test_case "printing" `Quick test_pp_roundtrip_examples;
        QCheck_alcotest.to_alcotest prop_linear_form_agrees_with_eval;
        QCheck_alcotest.to_alcotest prop_add_commutes_under_eval;
        QCheck_alcotest.to_alcotest prop_floordiv_mod_law;
      ] );
  ]
