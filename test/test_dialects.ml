(* Tests for the dialect definitions: builders produce verifying IR and
   the registered per-op verifiers reject malformed operations. *)

open Mlc_ir
open Mlc_dialects

let fresh_fn args f =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"t" ~args ~results:[] in
  let bb = Builder.at_end entry in
  f bb (Ir.Block.args entry);
  Func.return_ bb [];
  m

let verifies m =
  match Verifier.verify m with
  | () -> true
  | exception Verifier.Verification_error _ -> false

let rejected m = not (verifies m)

let test_arith_type_mismatch_rejected () =
  let m =
    fresh_fn [ Ty.F64; Ty.F32 ] (fun bb args ->
        match args with
        | [ a; b ] ->
          (* addf over mixed types: build manually to bypass the smart
             constructor's type propagation. *)
          ignore
            (Builder.create bb ~results:[ Ty.F64 ] Arith.addf_op [ a; b ])
        | _ -> assert false)
  in
  Alcotest.(check bool) "mixed addf rejected" true (rejected m)

let test_constant_type_check () =
  let m =
    fresh_fn [] (fun bb _ ->
        ignore (Builder.create bb
            ~attrs:[ ("value", Attr.Float 1.0) ]
            ~results:[ Ty.i32 ] Arith.constant_op []))
  in
  Alcotest.(check bool) "float constant with int type rejected" true (rejected m)

let test_memref_index_arity () =
  let m =
    fresh_fn [ Ty.memref [ 4; 4 ] Ty.F64 ] (fun bb args ->
        let buf = List.hd args in
        let i = Arith.const_index bb 0 in
        (* rank-2 memref loaded with one index *)
        ignore (Builder.create bb ~results:[ Ty.F64 ] Memref.load_op [ buf; i ]))
  in
  Alcotest.(check bool) "bad load arity rejected" true (rejected m)

let test_scf_for_well_formed () =
  let m =
    fresh_fn [ Ty.F64 ] (fun bb args ->
        let zero = Arith.const_index bb 0 in
        let ten = Arith.const_index bb 10 in
        let one = Arith.const_index bb 1 in
        let acc0 = List.hd args in
        let loop =
          Scf.for_ bb ~lb:zero ~ub:ten ~step:one ~iter_args:[ acc0 ]
            (fun bb _iv iters ->
              [ Arith.addf bb (List.hd iters) (List.hd iters) ])
        in
        ignore (Ir.Op.results loop))
  in
  Alcotest.(check bool) "well-formed scf.for verifies" true (verifies m)

let test_linalg_generic_map_arity () =
  let m =
    fresh_fn [ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64 ] (fun bb args ->
        match args with
        | [ x; y ] ->
          let generic =
            Linalg.generic bb ~ins:[ x ] ~outs:[ y ]
              ~maps:[ Affine.identity 1; Affine.identity 1 ]
              ~iterators:[ Attr.Parallel ]
              (fun _ ins _ -> ins)
          in
          (* Corrupt: drop one indexing map. *)
          Ir.Op.set_attr generic "indexing_maps"
            (Attr.Arr [ Attr.Affine_map (Affine.identity 1) ])
        | _ -> assert false)
  in
  Alcotest.(check bool) "map arity mismatch rejected" true (rejected m)

let test_linalg_infer_bounds_conv () =
  let m = ref None in
  let _ =
    fresh_fn
      [ Ty.memref [ 6; 6 ] Ty.F64; Ty.memref [ 3; 3 ] Ty.F64; Ty.memref [ 4; 4 ] Ty.F64 ]
      (fun bb args ->
        match args with
        | [ x; w; y ] ->
          let open Affine in
          let in_map =
            make ~num_dims:4 ~num_syms:0
              [ add (dim 0) (dim 2); add (dim 1) (dim 3) ]
          in
          let w_map = make ~num_dims:4 ~num_syms:0 [ dim 2; dim 3 ] in
          let out_map = make ~num_dims:4 ~num_syms:0 [ dim 0; dim 1 ] in
          let g =
            Linalg.generic bb ~ins:[ x; w ] ~outs:[ y ]
              ~maps:[ in_map; w_map; out_map ]
              ~iterators:[ Attr.Parallel; Attr.Parallel; Attr.Reduction; Attr.Reduction ]
              (fun bb ins outs ->
                match (ins, outs) with
                | [ a; wv ], [ acc ] -> [ Arith.addf bb acc (Arith.mulf bb a wv) ]
                | _ -> assert false)
          in
          m := Some g
        | _ -> assert false)
  in
  Alcotest.(check (list int))
    "conv bounds inferred from output and window shapes" [ 4; 4; 3; 3 ]
    (Linalg.infer_bounds (Option.get !m))

let test_memref_stream_interleave_verifier () =
  (* An interleaved iterator anywhere but last is rejected. *)
  let m =
    fresh_fn [ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64 ] (fun bb args ->
        match args with
        | [ x; y ] ->
          let g =
            Memref_stream.generic bb ~bounds:[ 2; 2 ] ~ins:[ x ] ~outs:[ y ]
              ~maps:
                [
                  Affine.make ~num_dims:2 ~num_syms:0
                    [ Affine.(add (mul (dim 0) (const 2)) (dim 1)) ];
                  Affine.make ~num_dims:2 ~num_syms:0
                    [ Affine.(add (mul (dim 0) (const 2)) (dim 1)) ];
                ]
              ~iterators:[ Attr.Parallel; Attr.Interleaved ]
              (fun _bb ins _outs -> ins)
          in
          Ir.Op.set_attr g "iterator_types"
            (Attr.Iterators [ Attr.Interleaved; Attr.Parallel ])
        | _ -> assert false)
  in
  Alcotest.(check bool) "interleaved-first rejected" true (rejected m)

let test_memref_stream_unroll_factor () =
  let got = ref 0 in
  let _ =
    fresh_fn [ Ty.memref [ 8 ] Ty.F64; Ty.memref [ 8 ] Ty.F64 ] (fun bb args ->
        match args with
        | [ x; y ] ->
          let map =
            Affine.make ~num_dims:2 ~num_syms:0
              [ Affine.(add (mul (dim 0) (const 4)) (dim 1)) ]
          in
          let g =
            Memref_stream.generic bb ~bounds:[ 2; 4 ] ~ins:[ x ] ~outs:[ y ]
              ~maps:[ map; map ]
              ~iterators:[ Attr.Parallel; Attr.Interleaved ]
              (fun _bb ins _outs -> ins)
          in
          got := Memref_stream.unroll_factor g
        | _ -> assert false)
  in
  Alcotest.(check int) "unroll factor = trailing interleaved bound" 4 !got

let test_streaming_region_directionality () =
  let m =
    fresh_fn [ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64 ] (fun bb args ->
        match args with
        | [ x; y ] ->
          let p = { Attr.ip_ub = [ 4 ]; ip_map = Affine.identity 1 } in
          let region =
            Memref_stream.streaming_region bb ~patterns:[ p; p ] ~ins:[ x ]
              ~outs:[ y ]
              (fun _bb _streams -> ())
          in
          (* Corrupt: claim both streams are inputs. *)
          Ir.Op.set_attr region "ins" (Attr.Int 2)
        | _ -> assert false)
  in
  Alcotest.(check bool) "wrong stream directionality rejected" true (rejected m)

let test_rv_func_abi () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Mlc_riscv.Rv_func.func b ~name:"k"
      ~args:[ Mlc_riscv.Reg.Int_kind; Mlc_riscv.Reg.Float_kind; Mlc_riscv.Reg.Int_kind ]
  in
  let bb = Builder.at_end entry in
  Mlc_riscv.Rv_func.return_ bb [];
  Alcotest.(check bool) "ABI arg registers assigned" true (verifies m);
  let tys = List.map Ir.Value.ty (Ir.Block.args entry) in
  Alcotest.(check bool) "a0, fa0, a1" true
    (tys = [ Ty.Int_reg (Some "a0"); Ty.Float_reg (Some "fa0"); Ty.Int_reg (Some "a1") ])

let test_frep_body_restriction () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Mlc_riscv.Rv_func.func b ~name:"k" ~args:[] in
  let bb = Builder.at_end entry in
  let rpt = Mlc_riscv.Rv.li bb 7 in
  ignore
    (Mlc_riscv.Rv_snitch.frep_outer bb ~rpt (fun fb _ ->
         (* An integer op in the body must be rejected. *)
         ignore (Mlc_riscv.Rv.li fb 1);
         []));
  Mlc_riscv.Rv_func.return_ bb [];
  Alcotest.(check bool) "integer op in frep body rejected" true (rejected m)

let test_snitch_stream_dim_limit () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Mlc_riscv.Rv_func.func b ~name:"k" ~args:[ Mlc_riscv.Reg.Int_kind ] in
  let bb = Builder.at_end entry in
  let p =
    { Attr.ub = [ 2; 2; 2; 2; 2 ]; strides = [ 16; 16; 16; 16; 8 ] }
  in
  ignore
    (Mlc_riscv.Snitch_stream.streaming_region bb ~patterns:[ p ]
       ~ins:[ Ir.Block.arg entry 0 ] ~outs:[] (fun _bb _ -> ()));
  Mlc_riscv.Rv_func.return_ bb [];
  Alcotest.(check bool) "5-dim pattern rejected" true (rejected m)

let suite =
  [
    ( "dialects",
      [
        Alcotest.test_case "arith type mismatch" `Quick test_arith_type_mismatch_rejected;
        Alcotest.test_case "constant type check" `Quick test_constant_type_check;
        Alcotest.test_case "memref index arity" `Quick test_memref_index_arity;
        Alcotest.test_case "scf.for well-formed" `Quick test_scf_for_well_formed;
        Alcotest.test_case "linalg map arity" `Quick test_linalg_generic_map_arity;
        Alcotest.test_case "linalg conv bound inference" `Quick test_linalg_infer_bounds_conv;
        Alcotest.test_case "interleaved must be last" `Quick test_memref_stream_interleave_verifier;
        Alcotest.test_case "unroll factor" `Quick test_memref_stream_unroll_factor;
        Alcotest.test_case "stream directionality" `Quick test_streaming_region_directionality;
        Alcotest.test_case "rv_func ABI" `Quick test_rv_func_abi;
        Alcotest.test_case "frep body restriction" `Quick test_frep_body_restriction;
        Alcotest.test_case "SSR dim limit" `Quick test_snitch_stream_dim_limit;
      ] );
  ]
