(* Mlc_verify suite: interval-domain unit tests, hand-built
   out-of-bounds and race modules, the three injected-bug drills (a
   corruption spliced into the pipeline must be pinned to exactly that
   pass, with the at-checkpoint IR captured), the golden-kernel sweep
   (every registry kernel under every oracle config is verifier-clean at
   every checkpoint), a qcheck differential holding the bounds verdict
   to the simulator's Access_fault behaviour on 2000 seeded fuzz cases,
   and the disk-cache eviction contract. *)

module D = Mlc_diag.Diag
module V = Mlc_verify.Verify
module I = Mlc_verify.Interval
module Ir = Mlc_ir.Ir
module Ty = Mlc_ir.Ty
module Attr = Mlc_ir.Attr
module Builder = Mlc_ir.Builder
module Pass = Mlc_ir.Pass
module Builtin = Mlc_dialects.Builtin
module Func = Mlc_dialects.Func
module Arith = Mlc_dialects.Arith
module Scf = Mlc_dialects.Scf
module Memref = Mlc_dialects.Memref
module Cluster = Mlc_dialects.Cluster
module FC = Mlc_fuzz.Fuzz_case
module FO = Mlc_fuzz.Fuzz_oracle

let pp_finding d =
  Printf.sprintf "%s: %s" (Option.value ~default:"-" d.D.pass) d.D.message

let check_has what substring got =
  if
    not
      (List.exists
         (fun d ->
           let s = pp_finding d in
           let n = String.length substring in
           let rec scan i =
             i + n <= String.length s
             && (String.sub s i n = substring || scan (i + 1))
           in
           scan 0)
         got)
  then
    Alcotest.failf "%s: no finding mentions %S among [%s]" what substring
      (String.concat "; " (List.map pp_finding got))

(* --- interval domain -------------------------------------------------- *)

let interval_ops () =
  Alcotest.(check string) "join" "[1, 9]"
    (I.to_string (I.join (I.range 1 4) (I.range 3 9)));
  Alcotest.(check string) "join top" "⊤" (I.to_string (I.join I.top (I.const 2)));
  Alcotest.(check string) "add" "[5, 11]"
    (I.to_string (I.add (I.range 2 4) (I.range 3 7)));
  Alcotest.(check string) "sub" "[-5, 1]"
    (I.to_string (I.sub (I.range 2 4) (I.range 3 7)));
  Alcotest.(check string) "mul mixed signs" "[-8, 12]"
    (I.to_string (I.mul (I.range (-2) 3) (I.range 1 4)));
  Alcotest.(check bool) "within yes" true
    (I.within (I.range 0 3) ~lo:0 ~hi:3 = `Yes);
  Alcotest.(check bool) "within escapes" true
    (I.within (I.range 0 4) ~lo:0 ~hi:3 = `Escapes);
  Alcotest.(check bool) "within unknown" true
    (I.within I.top ~lo:0 ~hi:3 = `Unknown)

(* --- bounds on hand-built loops --------------------------------------- *)

(* for i in [0, trip): load a[i] against memref<extent x f64>. *)
let loop_module ~extent ~trip =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let mref = Ty.memref [ extent ] Ty.F64 in
  let _fn, entry = Func.func b ~name:"f" ~args:[ mref ] ~results:[] in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0 in
  let lb = Arith.const_index bb 0 in
  let ub = Arith.const_index bb trip in
  let step = Arith.const_index bb 1 in
  ignore
    (Scf.for_ bb ~lb ~ub ~step (fun fb iv _ ->
         ignore (Memref.load fb a [ iv ]);
         []));
  Func.return_ bb [];
  m

let bounds_in_bounds () =
  let m = loop_module ~extent:4 ~trip:4 in
  Alcotest.(check (list string)) "no findings" []
    (List.map pp_finding (V.bounds_findings m));
  Alcotest.(check string) "verdict" "proved"
    (V.verdict_to_string (V.bounds_verdict m))

let bounds_oob () =
  let m = loop_module ~extent:4 ~trip:6 in
  check_has "oob loop" "index [0, 5] escapes dimension 0 of extent 4"
    (V.errors (V.bounds_findings m));
  Alcotest.(check string) "verdict" "out-of-bounds"
    (V.verdict_to_string (V.bounds_verdict m))

(* --- races on hand-built foralls -------------------------------------- *)

(* An scf.forall over a memref<8x8> argument; [key] selects what the
   cluster.slice is keyed by, [parts] its split count. *)
let forall_module ~num_threads ~parts ~key =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let mref = Ty.memref [ 8; 8 ] Ty.F64 in
  let _fn, entry = Func.func b ~name:"f" ~args:[ mref ] ~results:[] in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0 in
  ignore
    (Scf.forall bb ~num_threads (fun fb tid ->
         let k = match key with `Tid -> tid | `Const -> Arith.const_index fb 0 in
         let s = Cluster.slice fb ~parts ~tid:k a in
         let z = Arith.const_float fb 0.0 in
         let i0 = Arith.const_index fb 0 in
         Memref.store fb z s [ i0; i0 ]));
  Func.return_ bb [];
  m

let race_clean () =
  let m = forall_module ~num_threads:4 ~parts:4 ~key:`Tid in
  Alcotest.(check (list string)) "no findings" []
    (List.map pp_finding (V.race_findings m))

let race_wrong_key () =
  let m = forall_module ~num_threads:4 ~parts:4 ~key:`Const in
  check_has "constant-keyed slice"
    "not keyed by the enclosing scf.forall's thread id"
    (V.errors (V.race_findings m))

let race_parts_mismatch () =
  let m = forall_module ~num_threads:4 ~parts:2 ~key:`Tid in
  check_has "parts mismatch" "splits 2 ways under a 4-thread scf.forall"
    (V.errors (V.race_findings m))

let race_unsliced_write () =
  (* A store straight into the shared argument: every instance writes
     the same cell. *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let mref = Ty.memref [ 8; 8 ] Ty.F64 in
  let _fn, entry = Func.func b ~name:"f" ~args:[ mref ] ~results:[] in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0 in
  ignore
    (Scf.forall bb ~num_threads:4 (fun fb _tid ->
         let z = Arith.const_float fb 0.0 in
         let i0 = Arith.const_index fb 0 in
         Memref.store fb z a [ i0; i0 ]));
  Func.return_ bb [];
  check_has "shared write" "neither a cluster.slice"
    (V.errors (V.race_findings m))

let staging_disjointness () =
  Alcotest.(check (list string)) "disjoint regions clean" []
    (List.map pp_finding
       (V.check_staging
          [ ("a", 0x1000, 256); ("b", 0x1100, 256); ("stack", 0x2000, 512) ]));
  check_has "overlap detected" "staged TCDM regions overlap"
    (V.check_staging [ ("a", 0x1000, 512); ("b", 0x1100, 256) ])

(* --- injected-bug drills ---------------------------------------------- *)

(* Splice a mutator pass right after [after] and run the pipeline with
   the checkpoint armed; the resulting Pass_failed must name the mutator
   and carry the at-checkpoint IR. *)
let inject ~after ~name mutate passes =
  let rec go = function
    | [] -> Alcotest.failf "drill: no pass named %s to inject after" after
    | (p : Pass.t) :: rest ->
      if p.Pass.name = after then p :: Pass.make name mutate :: rest
      else p :: go rest
  in
  go passes

let expect_pinned ~drill ~ir_required run =
  match run () with
  | () -> Alcotest.failf "%s: corruption not detected" drill
  | exception Pass.Pass_failed d ->
    Alcotest.(check (option string)) (drill ^ " pinned to the mutator")
      (Some drill) d.D.pass;
    if ir_required then
      Alcotest.(check bool) (drill ^ " carries checkpoint IR") true
        (d.D.ir_before <> None)

let drill_swapped_indices () =
  (* Swap the two indices of a lowered load on a 4x8 buffer: the [0,7]
     column index lands in the extent-4 row dimension. *)
  let spec = Mlc_kernels.Builders.relu ~n:4 ~m:8 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let drill = "drill-swap-indices" in
  let mutate m =
    match
      Ir.find_first m (fun op ->
          Ir.Op.name op = Memref.load_op
          && List.length (Ir.Op.operands op) = 3
          && not (Ir.Value.equal (Ir.Op.operand op 1) (Ir.Op.operand op 2)))
    with
    | None -> Alcotest.fail "drill: no two-index load after lowering"
    | Some op ->
      let i = Ir.Op.operand op 1 and j = Ir.Op.operand op 2 in
      Ir.Op.set_operand op 1 j;
      Ir.Op.set_operand op 2 i
  in
  expect_pinned ~drill ~ir_required:true (fun () ->
      Pass.run ~checkpoint:V.checkpoint m
        (inject ~after:"lower-memref-stream-to-loops" ~name:drill mutate
           (Mlc_transforms.Pipeline.passes Mlc_transforms.Pipeline.baseline)))

let drill_widened_forall () =
  (* Blow up the forall's thread count out from under a matching slice:
     parts no longer covers the threads, so blocks are reused. *)
  let m = forall_module ~num_threads:2 ~parts:2 ~key:`Tid in
  let drill = "drill-widen-forall" in
  let mutate m =
    match Ir.find_first m (fun op -> Ir.Op.name op = Scf.forall_op) with
    | None -> Alcotest.fail "drill: no forall"
    | Some op -> Ir.Op.set_attr op "num_threads" (Attr.Int 4)
  in
  expect_pinned ~drill ~ir_required:true (fun () ->
      Pass.run ~checkpoint:V.checkpoint m [ Pass.make drill mutate ])

let drill_broken_dominance () =
  (* Move a loop bound's defining constant below the loop: the use no
     longer dominates — the structural verifier's domain. *)
  let spec = Mlc_kernels.Builders.relu ~n:4 ~m:8 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let drill = "drill-break-dominance" in
  let mutate m =
    match Ir.find_first m (fun op -> Ir.Op.name op = Scf.for_op) with
    | None -> Alcotest.fail "drill: no scf.for after lowering"
    | Some for_op -> (
      match Ir.Value.defining_op (Scf.lb for_op) with
      | Some c when Ir.Op.name c = Arith.constant_op ->
        Ir.Op.unlink c;
        Ir.Op.insert_after ~anchor:for_op c
      | _ -> Alcotest.fail "drill: loop bound is not a constant")
  in
  expect_pinned ~drill ~ir_required:false (fun () ->
      Pass.run ~checkpoint:V.checkpoint m
        (inject ~after:"lower-memref-stream-to-loops" ~name:drill mutate
           (Mlc_transforms.Pipeline.passes Mlc_transforms.Pipeline.baseline)))

(* --- golden kernels: zero findings at every checkpoint ----------------- *)

let golden_kernels_clean () =
  List.iter
    (fun (c : Mlc_fuzz.Check_all.combo) ->
      let findings =
        Mlc_fuzz.Check_all.check_ir_combo ~n:8 ~m:8 ~k:8 c
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%s verifier-clean" c.Mlc_fuzz.Check_all.kernel
           c.Mlc_fuzz.Check_all.config)
        []
        (List.map pp_finding (V.errors findings)))
    (Mlc_fuzz.Check_all.combos ())

(* --- bounds verdict vs simulator Access_fault differential ------------- *)

(* 2000 deterministically seeded fuzz cases, each compiled under one
   oracle config (rotating through the matrix) with a collecting
   checkpoint folding the weakest bounds verdict across all pipeline
   levels. The invariant: a program every checkpoint proved in-bounds,
   whose buffers and stack fit the TCDM, must not raise Access_fault —
   such a trap is a soundness bug in the abstract interpreter. Arena
   exhaustion (addr = -1) and non-access traps are out of scope. *)
let footprint_fits (spec : Mlc_kernels.Builders.spec) =
  let module B = Mlc_kernels.Builders in
  let elem_bytes = Ty.byte_width spec.B.elem in
  let bytes =
    List.fold_left
      (fun acc -> function
        | B.Buf_in sh | B.Buf_out sh ->
          acc + (Ty.num_elements sh * elem_bytes) + 64 (* alignment slack *)
        | B.Scalar_float _ -> acc)
      0 spec.B.args
  in
  bytes + Mlc_sim.Machine.stack_bytes + 4096 < Mlc_sim.Mem.tcdm_size

let config_counter = ref 0

let bounds_vs_trap_case case =
  let module B = Mlc_kernels.Builders in
  let spec = FC.to_spec case in
  let config, flags, backend =
    List.nth FO.configs (!config_counter mod List.length FO.configs)
  in
  incr config_counter;
  if not (footprint_fits spec) then true
  else begin
    let m = spec.B.build () in
    let verdict = ref (V.bounds_verdict m) in
    let collect ~pass_name:_ mod_ =
      verdict := V.verdict_join !verdict (V.bounds_verdict mod_)
    in
    match
      Mlc_transforms.Pipeline.compile ~flags ~checkpoint:collect
        ~passes:(Mlc_transforms.Backend.passes_for backend flags)
        m
    with
    | exception _ -> true (* compile failures are the oracle's domain *)
    | result -> (
      let data =
        Mlc.Runner.gen_inputs ~seed:(FC.input_seed case) ~elem:spec.B.elem
          spec.B.args
      in
      match
        Mlc.Runner.simulate ~elem:spec.B.elem ~fn_name:spec.B.fn_name
          ~args:spec.B.args ~data result.Mlc_transforms.Pipeline.asm
      with
      | _ -> true
      | exception
          Mlc_sim.Trap.Trap
            { kind = Mlc_sim.Trap.Access_fault { addr; width }; _ }
        when addr >= 0 ->
        if !verdict = V.Proved then
          QCheck.Test.fail_reportf
            "%s: %d-byte Access_fault at 0x%x on a program every checkpoint \
             proved in-bounds (abstract interpreter soundness bug)"
            config width addr
        else true
      | exception _ -> true)
  end

let prop_bounds_vs_trap =
  (* Deterministic seeding independent of qcheck's own state, mirroring
     Fuzz.run's per-case scheme (distinct salt from test_lint's). *)
  let counter = ref 0 in
  let gen _st =
    let st = Random.State.make [| 42; !counter; 0x9E5 |] in
    incr counter;
    Mlc_fuzz.Fuzz_gen.gen st
  in
  QCheck.Test.make
    ~name:"bounds verdict never falsely proves a trapping program"
    ~count:2000
    (QCheck.make ~print:FC.to_string gen)
    bounds_vs_trap_case

(* --- disk-cache eviction ---------------------------------------------- *)

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mlc-evict-%d" (Unix.getpid ()))
  in
  Mlc_parallel.Cache.set_disk_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Mlc_parallel.Cache.set_eviction ();
      Mlc_parallel.Cache.set_disk_dir None;
      Mlc_parallel.Cache.clear_memory ();
      match Sys.readdir dir with
      | entries ->
        Array.iter
          (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
          entries;
        (try Sys.rmdir dir with _ -> ())
      | exception Sys_error _ -> ())
    (fun () -> f dir)

let cache_eviction () =
  with_temp_cache_dir (fun dir ->
      let payload = String.make 1024 'x' in
      let keys =
        List.init 6 (fun i ->
            Mlc_parallel.Cache.key ~namespace:"evict-test" ~version:"v1"
              [ string_of_int i ])
      in
      List.iter (fun k -> Mlc_parallel.Cache.add ~key:k payload) keys;
      let path k = Filename.concat dir (k ^ ".bin") in
      let live k = Sys.file_exists (path k) in
      List.iter
        (fun k -> Alcotest.(check bool) "written" true (live k))
        keys;
      let entry_size = (Unix.stat (path (List.hd keys))).Unix.st_size in
      (* Back-date the first three entries so they are unambiguously the
         oldest, then cap the directory at three entries' worth. *)
      let old = Unix.gettimeofday () -. 3600. in
      List.iteri
        (fun i k -> if i < 3 then Unix.utimes (path k) old old)
        keys;
      let before = Mlc_parallel.Cache.evicted () in
      Mlc_parallel.Cache.set_eviction ~max_bytes:(3 * entry_size) ();
      Mlc_parallel.Cache.sweep ();
      List.iteri
        (fun i k ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d %s" i (if i < 3 then "evicted" else "kept"))
            (i >= 3) (live k))
        keys;
      Alcotest.(check int) "size-cap evictions counted" (before + 3)
        (Mlc_parallel.Cache.evicted ());
      (* Age cap: back-date the survivors and drop everything stale. *)
      List.iter (fun k -> if live k then Unix.utimes (path k) old old) keys;
      Mlc_parallel.Cache.set_eviction ~max_age_s:60. ();
      Mlc_parallel.Cache.sweep ();
      List.iter
        (fun k -> Alcotest.(check bool) "age-capped away" false (live k))
        keys;
      Alcotest.(check int) "age-cap evictions counted" (before + 6)
        (Mlc_parallel.Cache.evicted ()))

let suite =
  [
    ( "verify",
      [
        Alcotest.test_case "interval arithmetic and ordering" `Quick
          interval_ops;
        Alcotest.test_case "bounds: in-bounds loop proved" `Quick
          bounds_in_bounds;
        Alcotest.test_case "bounds: concrete out-of-bounds loop" `Quick
          bounds_oob;
        Alcotest.test_case "race: tid-keyed full split is clean" `Quick
          race_clean;
        Alcotest.test_case "race: constant-keyed slice" `Quick race_wrong_key;
        Alcotest.test_case "race: slice parts / thread-count mismatch" `Quick
          race_parts_mismatch;
        Alcotest.test_case "race: unsliced shared write" `Quick
          race_unsliced_write;
        Alcotest.test_case "staging disjointness" `Quick staging_disjointness;
        Alcotest.test_case "drill: swapped load indices pinned" `Quick
          drill_swapped_indices;
        Alcotest.test_case "drill: widened forall pinned" `Quick
          drill_widened_forall;
        Alcotest.test_case "drill: broken dominance pinned" `Quick
          drill_broken_dominance;
        Alcotest.test_case "golden kernels clean at every checkpoint" `Slow
          golden_kernels_clean;
        QCheck_alcotest.to_alcotest prop_bounds_vs_trap;
        Alcotest.test_case "disk-cache eviction caps" `Quick cache_eviction;
      ] );
  ]
