(* Tests for the multi-level spill-free register allocator (paper §3.3)
   and the rematerialisation fallback. *)

open Mlc_ir
open Mlc_riscv
open Mlc_regalloc

let fresh_rv_fn args f =
  let m = Mlc_dialects.Builtin.create_module () in
  let b = Builder.at_end (Mlc_dialects.Builtin.module_body m) in
  let fn, entry = Rv_func.func b ~name:"k" ~args in
  let bb = Builder.at_end entry in
  f bb (Ir.Block.args entry);
  Rv_func.return_ bb [];
  (m, fn)

let reg v = Option.get (match Ir.Value.ty v with
  | Ty.Int_reg r | Ty.Float_reg r -> r
  | _ -> None)

let test_straight_line () =
  let m, fn =
    fresh_rv_fn [ Reg.Int_kind ] (fun bb args ->
        let base = List.hd args in
        let x = Rv.fload bb Rv.fld_op base in
        let y = Rv.fload bb Rv.fld_op ~offset:8 base in
        let s = Rv.fbinary bb Rv.fadd_d_op x y in
        Rv.fstore bb Rv.fsd_op ~offset:16 s base)
  in
  let report = Allocator.allocate_func fn in
  Verifier.verify m;
  Alcotest.(check bool) "few FP registers" true (report.Allocator.fp_count <= 3);
  Alcotest.(check int) "one integer register (a0)" 1 report.Allocator.int_count

let test_reuse_after_death () =
  (* A long chain of single-use values reuses one register. *)
  let _, fn =
    fresh_rv_fn [] (fun bb _ ->
        let v = ref (Rv.li bb 1) in
        for _ = 1 to 30 do
          v := Rv.addi bb !v 1
        done;
        ignore (Rv.mv bb !v))
  in
  let report = Allocator.allocate_func fn in
  Alcotest.(check bool)
    (Printf.sprintf "chain fits in 2 registers (used %d)" report.Allocator.int_count)
    true
    (report.Allocator.int_count <= 2)

let test_exclusion_of_preallocated () =
  (* A value pre-pinned to t0 excludes t0 from the pool. *)
  let _, fn =
    fresh_rv_fn [] (fun bb _ ->
        let pinned = Rv.get_register bb "t0" in
        let a = Rv.li bb 5 in
        let b = Rv.add bb a pinned in
        ignore (Rv.add bb b pinned))
  in
  ignore (Allocator.allocate_func fn);
  let clashes = ref 0 in
  Ir.walk fn (fun op ->
      List.iter
        (fun v ->
          match Ir.Value.ty v with
          | Ty.Int_reg (Some "t0")
            when Ir.Value.defining_op v <> None
                 && Ir.Op.name (Option.get (Ir.Value.defining_op v))
                    <> Rv.get_register_op ->
            incr clashes
          | _ -> ())
        (Ir.Op.results op));
  Alcotest.(check int) "t0 never reassigned" 0 !clashes

let test_loop_unification () =
  let _, fn =
    fresh_rv_fn [] (fun bb _ ->
        let lb = Rv.li bb 0 in
        let ub = Rv.li bb 10 in
        let zero = Rv.fcvt_d_w bb (Rv.get_register bb "zero") in
        let init = Rv.fmv_d bb zero in
        let loop =
          Rv_scf.for_ bb ~lb ~ub ~iter_args:[ init ] (fun fb _iv iters ->
              [ Rv.fbinary fb Rv.fadd_d_op (List.hd iters) (List.hd iters) ])
        in
        ignore (Rv.fmv_d bb (Ir.Op.result loop 0)))
  in
  ignore (Allocator.allocate_func fn);
  let loop = List.hd (Ir.collect fn (fun op -> Ir.Op.name op = Rv_scf.for_op)) in
  let r_init = reg (List.hd (Rv_scf.iter_operands loop)) in
  let r_arg = reg (List.hd (Rv_scf.iter_args loop)) in
  let r_res = reg (Ir.Op.result loop 0) in
  let r_yield = reg (Ir.Op.operand (Rv_scf.yield_of loop) 0) in
  Alcotest.(check string) "init = arg" r_init r_arg;
  Alcotest.(check string) "arg = result" r_arg r_res;
  Alcotest.(check string) "result = yield" r_res r_yield

let test_accumulator_not_clobbered_in_loop_body () =
  (* Regression for the pinning bug: a value allocated inside the body
     must not steal the loop-carried accumulator's register. *)
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind ] (fun bb args ->
        let base = List.hd args in
        let lb = Rv.li bb 0 in
        let ub = Rv.li bb 10 in
        let zero = Rv.fcvt_d_w bb (Rv.get_register bb "zero") in
        let init = Rv.fmv_d bb zero in
        let loop =
          Rv_scf.for_ bb ~lb ~ub ~iter_args:[ init ] (fun fb _iv iters ->
              let acc = List.hd iters in
              let x = Rv.fload fb Rv.fld_op base in
              [ Rv.fternary fb Rv.fmadd_d_op x x acc ])
        in
        Rv.fstore bb Rv.fsd_op (Ir.Op.result loop 0) base)
  in
  ignore (Allocator.allocate_func fn);
  let loop = List.hd (Ir.collect fn (fun op -> Ir.Op.name op = Rv_scf.for_op)) in
  let acc_reg = reg (List.hd (Rv_scf.iter_args loop)) in
  let load =
    List.hd (Ir.collect fn (fun op -> Ir.Op.name op = Rv.fld_op))
  in
  Alcotest.(check bool) "loaded value keeps its own register" true
    (reg (Ir.Op.result load 0) <> acc_reg)

let test_stream_read_pinning () =
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind ] (fun bb args ->
        let ptr = List.hd args in
        ignore
          (Snitch_stream.streaming_region bb
             ~patterns:[ { Attr.ub = [ 8 ]; strides = [ 8 ] } ]
             ~ins:[ ptr ] ~outs:[] (fun ib streams ->
               let s = List.hd streams in
               let v1 = Rv_snitch.read ib s in
               let v2 = Rv_snitch.read ib s in
               ignore (Rv.fbinary ib Rv.fadd_d_op v1 v2))))
  in
  Mlc_ir.Pass.run fn
    [ Mlc_transforms.Lower_snitch_stream.pass ];
  ignore (Allocator.allocate_func fn);
  let read = List.hd (Ir.collect fn (fun op -> Ir.Op.name op = Rv_snitch.read_op)) in
  Alcotest.(check string) "read result pinned to the SSR data register" "ft0"
    (reg (Ir.Op.result read 0))

let test_out_of_registers_raises () =
  (* 25 simultaneously-live FP values cannot fit in 20 registers. *)
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind ] (fun bb args ->
        let base = List.hd args in
        let vs =
          List.init 25 (fun i -> Rv.fload bb Rv.fld_op ~offset:(8 * i) base)
        in
        (* Use them all afterwards so everything is live at once. *)
        let acc =
          List.fold_left (fun acc v -> Rv.fbinary bb Rv.fadd_d_op acc v)
            (List.hd vs) (List.tl vs)
        in
        Rv.fstore bb Rv.fsd_op acc base)
  in
  Alcotest.(check bool) "raises Out_of_registers, never spills" true
    (match Allocator.allocate_func fn with
    | exception Allocator.Out_of_registers Reg.Float_kind -> true
    | _ -> false)

let test_remat_fallback () =
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind ] (fun bb args ->
        let base = List.hd args in
        (* 20 distinct constants, each used twice far apart: naive
           allocation keeps all live; remat duplicates them. *)
        let consts = List.init 20 (fun i -> Rv.li bb (100 + i)) in
        List.iter (fun c -> ignore (Rv.add bb base c)) consts;
        List.iter (fun c -> ignore (Rv.add bb base c)) consts)
  in
  let report = Remat.allocate_with_remat fn in
  Alcotest.(check bool) "fits after rematerialisation" true
    (report.Allocator.int_count <= 15)

(* The future-work feature (paper §4.3): registers of unused arguments
   rejoin the pool. The pooling kernels' shape-only window pointer is
   exactly such an argument. *)
let test_dead_argument_register_reclaimed () =
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind; Reg.Int_kind ] (fun bb args ->
        (* Second argument (a1) is never used; 14 chained long-lived
           values need every pool register plus the reclaimed a1. *)
        ignore (List.nth args 1);
        let vs = List.init 14 (fun i -> Rv.li bb i) in
        ignore (List.fold_left (fun acc v -> Rv.add bb acc v) (List.hd vs) (List.tl vs)))
  in
  (* All 14 constants live simultaneously at the fold: needs 15 regs with
     a0 excluded; only succeeds if a1 is reclaimed. *)
  (match Allocator.allocate_func ~reclaim_dead_args:false fn with
  | exception Allocator.Out_of_registers _ -> ()
  | _ -> Alcotest.fail "expected pressure without reclamation");
  ignore fn

let test_dead_argument_register_reclaimed_positive () =
  let _, fn =
    fresh_rv_fn [ Reg.Int_kind; Reg.Int_kind ] (fun bb args ->
        ignore (List.nth args 1);
        let vs = List.init 14 (fun i -> Rv.li bb i) in
        ignore (List.fold_left (fun acc v -> Rv.add bb acc v) (List.hd vs) (List.tl vs)))
  in
  let report = Allocator.allocate_func fn in
  Alcotest.(check bool) "succeeds with reclamation" true
    (report.Allocator.int_count >= 14)

let test_never_uses_saved_registers () =
  let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:8 ~k:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let result = Mlc_transforms.Pipeline.compile m in
  List.iter
    (fun (_, report) ->
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is caller-saved" r)
            false
            (String.length r >= 2 && r.[0] = 's' && r.[1] <> 'p'))
        (report.Allocator.int_regs @ report.Allocator.fp_regs))
    result.Mlc_transforms.Pipeline.reports

(* Paper §4.3 / Table 2: the allocator never exceeds the caller-saved
   pools across the kernel suite and a range of shapes. *)
let test_spill_free_across_suite () =
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.iter
        (fun (n, m, k) ->
          let spec = e.Mlc_kernels.Registry.instantiate ~n ~m ~k () in
          let mdl = spec.Mlc_kernels.Builders.build () in
          let result = Mlc_transforms.Pipeline.compile mdl in
          List.iter
            (fun (_, report) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s %dx%dx%d within pools" e.Mlc_kernels.Registry.name n m k)
                true
                (report.Allocator.fp_count <= 20 && report.Allocator.int_count <= 15))
            result.Mlc_transforms.Pipeline.reports)
        [ (4, 4, 4); (8, 16, 8); (16, 8, 16) ])
    Mlc_kernels.Registry.table1

let suite =
  [
    ( "regalloc",
      [
        Alcotest.test_case "straight line" `Quick test_straight_line;
        Alcotest.test_case "reuse after death" `Quick test_reuse_after_death;
        Alcotest.test_case "exclusion pass" `Quick test_exclusion_of_preallocated;
        Alcotest.test_case "loop unification" `Quick test_loop_unification;
        Alcotest.test_case "loop-carried pinning" `Quick
          test_accumulator_not_clobbered_in_loop_body;
        Alcotest.test_case "stream read pinning" `Quick test_stream_read_pinning;
        Alcotest.test_case "out of registers raises" `Quick test_out_of_registers_raises;
        Alcotest.test_case "remat fallback" `Quick test_remat_fallback;
        Alcotest.test_case "dead arg reclaimed (negative)" `Quick
          test_dead_argument_register_reclaimed;
        Alcotest.test_case "dead arg reclaimed (positive)" `Quick
          test_dead_argument_register_reclaimed_positive;
        Alcotest.test_case "no callee-saved registers" `Quick test_never_uses_saved_registers;
        Alcotest.test_case "spill-free across suite" `Slow test_spill_free_across_suite;
      ] );
  ]
