(* Tests for the reference interpreter: the executable semantics that the
   differential tests in test_pipeline.ml trust. Each behaviour is checked
   against values computed by independent OCaml code. *)

open Mlc_ir
open Mlc_dialects
open Mlc_interp

let buffer shape data =
  let b = Interp.buffer_create shape Ty.F64 in
  Array.blit data 0 b.Interp.data 0 (Array.length data);
  b

let check_arr = Alcotest.(check (array (float 1e-12)))

let test_scalar_arith_and_loops () =
  (* sum = Σ_{i<10} (i converted via buffer) using scf.for iter args *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"accumulate"
      ~args:[ Ty.memref [ 10 ] Ty.F64; Ty.memref [ 1 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 and out = Ir.Block.arg entry 1 in
  let zero = Arith.const_index bb 0 in
  let ten = Arith.const_index bb 10 in
  let one = Arith.const_index bb 1 in
  let init = Arith.const_float bb 0.0 in
  let loop =
    Scf.for_ bb ~lb:zero ~ub:ten ~step:one ~iter_args:[ init ] (fun bb iv iters ->
        let v = Memref.load bb x [ iv ] in
        [ Arith.addf bb (List.hd iters) v ])
  in
  Memref.store bb (Ir.Op.result loop 0) out [ zero ];
  Func.return_ bb [];
  Verifier.verify m;
  let xs = buffer [ 10 ] (Array.init 10 float_of_int) in
  let out_buf = buffer [ 1 ] [| 0.0 |] in
  Interp.run_func m "accumulate" [ Interp.Buf xs; Interp.Buf out_buf ];
  check_arr "sum 0..9" [| 45.0 |] out_buf.Interp.data

let test_linalg_matmul_semantics () =
  let spec = Mlc_kernels.Builders.matmul ~n:2 ~m:2 ~k:3 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let a = buffer [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = buffer [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = buffer [ 2; 2 ] (Array.make 4 99.0) in
  Interp.run_func m "matmul" [ Interp.Buf a; Interp.Buf b; Interp.Buf c ];
  check_arr "matmul 2x3 * 3x2" [| 58.; 64.; 139.; 154. |] c.Interp.data

let test_linalg_fill_overwrites () =
  let spec = Mlc_kernels.Builders.fill ~n:2 ~m:2 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let out = buffer [ 2; 2 ] (Array.make 4 7.0) in
  Interp.run_func m "fill" [ Interp.F 1.25; Interp.Buf out ];
  check_arr "filled" [| 1.25; 1.25; 1.25; 1.25 |] out.Interp.data

let test_max_pool_semantics () =
  let spec = Mlc_kernels.Builders.max_pool ~n:1 ~m:1 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let x = buffer [ 3; 3 ] [| 1.; 5.; 2.; -3.; 4.; 0.; 9.; -1.; 2. |] in
  let w = buffer [ 3; 3 ] (Array.make 9 0.0) in
  let y = buffer [ 1; 1 ] [| 0.0 |] in
  Interp.run_func m "max_pool" [ Interp.Buf x; Interp.Buf w; Interp.Buf y ];
  check_arr "max of window" [| 9.0 |] y.Interp.data

let test_stream_generic_interleaved () =
  (* z[j] = x[j] * 2 over 4 elements with an interleaved dim of 4: the
     body holds four copies. *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"x2"
      ~args:[ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 and z = Ir.Block.arg entry 1 in
  let map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.dim 0 ] in
  ignore
    (Memref_stream.generic bb ~bounds:[ 4 ] ~ins:[ x ] ~outs:[ z ]
       ~maps:[ map; map ] ~iterators:[ Attr.Interleaved ]
       (fun bb ins _outs ->
         List.map (fun v -> Arith.addf bb v v) ins));
  Func.return_ bb [];
  Verifier.verify m;
  let xs = buffer [ 4 ] [| 1.; 2.; 3.; 4. |] in
  let zs = buffer [ 4 ] (Array.make 4 0.0) in
  Interp.run_func m "x2" [ Interp.Buf xs; Interp.Buf zs ];
  check_arr "doubled" [| 2.; 4.; 6.; 8. |] zs.Interp.data

let test_stream_generic_inits () =
  (* Reduction with a fused init: out = init + Σ x, via inits operand. *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"reduce"
      ~args:[ Ty.memref [ 5 ] Ty.F64; Ty.memref [ 1 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 and out = Ir.Block.arg entry 1 in
  let init = Arith.const_float bb 100.0 in
  let x_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.dim 0 ] in
  let out_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.const 0 ] in
  ignore
    (Memref_stream.generic bb ~bounds:[ 5 ] ~ins:[ x ] ~outs:[ out ]
       ~inits:[ init ] ~maps:[ x_map; out_map ]
       ~iterators:[ Attr.Reduction ]
       (fun bb ins outs ->
         [ Arith.addf bb (List.hd outs) (List.hd ins) ]));
  Func.return_ bb [];
  Verifier.verify m;
  let xs = buffer [ 5 ] [| 1.; 2.; 3.; 4.; 5. |] in
  let out_buf = buffer [ 1 ] [| -999.0 |] in
  Interp.run_func m "reduce" [ Interp.Buf xs; Interp.Buf out_buf ];
  check_arr "init + sum" [| 115.0 |] out_buf.Interp.data

let test_streaming_region_order () =
  (* A transposed read pattern: stream a 2x3 buffer column-major and copy
     into a flat output; checks pattern_order semantics. *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"transpose_copy"
      ~args:[ Ty.memref [ 2; 3 ] Ty.F64; Ty.memref [ 6 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 and z = Ir.Block.arg entry 1 in
  (* iterate (col, row): element (d1, d0) *)
  let in_pattern =
    {
      Attr.ip_ub = [ 3; 2 ];
      ip_map = Affine.make ~num_dims:2 ~num_syms:0 [ Affine.dim 1; Affine.dim 0 ];
    }
  in
  let out_pattern =
    {
      Attr.ip_ub = [ 6 ];
      ip_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.dim 0 ];
    }
  in
  ignore
    (Memref_stream.streaming_region bb ~patterns:[ in_pattern; out_pattern ]
       ~ins:[ x ] ~outs:[ z ] (fun bb streams ->
         match streams with
         | [ s_in; s_out ] ->
           let zero = Arith.const_index bb 0 in
           let six = Arith.const_index bb 6 in
           let one = Arith.const_index bb 1 in
           ignore
             (Scf.for_ bb ~lb:zero ~ub:six ~step:one (fun bb _ _ ->
                  let v = Memref_stream.read bb s_in in
                  Memref_stream.write bb v s_out;
                  []))
         | _ -> assert false));
  Func.return_ bb [];
  Verifier.verify m;
  let xs = buffer [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let zs = buffer [ 6 ] (Array.make 6 0.0) in
  Interp.run_func m "transpose_copy" [ Interp.Buf xs; Interp.Buf zs ];
  check_arr "column-major order" [| 1.; 4.; 2.; 5.; 3.; 6. |] zs.Interp.data

let test_stream_overrun_detected () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"overrun" ~args:[ Ty.memref [ 2 ] Ty.F64 ] ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0 in
  let p = { Attr.ip_ub = [ 1 ]; ip_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.dim 0 ] } in
  ignore
    (Memref_stream.streaming_region bb ~patterns:[ p ] ~ins:[ x ] ~outs:[]
       (fun bb streams ->
         let s = List.hd streams in
         ignore (Memref_stream.read bb s);
         ignore (Memref_stream.read bb s)));
  Func.return_ bb [];
  let xs = buffer [ 2 ] [| 1.; 2. |] in
  Alcotest.(check bool) "stream overrun raises" true
    (match Interp.run_func m "overrun" [ Interp.Buf xs ] with
    | exception Interp.Interp_error _ -> true
    | _ -> false)

let test_f32_rounding () =
  (* Stores to an f32 buffer round through single precision. *)
  let b = Interp.buffer_create [ 1 ] Ty.F32 in
  Interp.buffer_set b [ 0 ] 0.1;
  Alcotest.(check bool) "f32 rounding applied" true
    (b.Interp.data.(0) <> 0.1
    && b.Interp.data.(0) = Int32.float_of_bits (Int32.bits_of_float 0.1))

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "scalars and loops" `Quick test_scalar_arith_and_loops;
        Alcotest.test_case "linalg matmul" `Quick test_linalg_matmul_semantics;
        Alcotest.test_case "linalg fill" `Quick test_linalg_fill_overwrites;
        Alcotest.test_case "max pool" `Quick test_max_pool_semantics;
        Alcotest.test_case "interleaved generic" `Quick test_stream_generic_interleaved;
        Alcotest.test_case "inits (fused fill)" `Quick test_stream_generic_inits;
        Alcotest.test_case "streaming region order" `Quick test_streaming_region_order;
        Alcotest.test_case "stream overrun" `Quick test_stream_overrun_detected;
        Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
      ] );
  ]
