(* Differential-fuzzer regression suite: pins every bug the fuzz
   harness flushed out (each with its minimised repro case), checks the
   oracle actually catches an injected miscompile, property-tests the
   case codec and the Insn printer/parser round-trip, and covers the
   epilogue/degenerate shapes the bugs lived in across pipeline
   configs. *)

open Mlc_transforms
module FC = Mlc_fuzz.Fuzz_case
module FO = Mlc_fuzz.Fuzz_oracle
module FG = Mlc_fuzz.Fuzz_gen
module FS = Mlc_fuzz.Fuzz_shrink
module Fuzz = Mlc_fuzz.Fuzz
module Insn = Mlc_sim.Insn
module Asm_parse = Mlc_sim.Asm_parse

(* --- pinned fuzzer repros ------------------------------------------- *)

(* Each entry is a shrunk case from a real fuzzer-found miscompile,
   replayed through the full oracle (every config, both program paths,
   both engines, bit-for-bit vs the interpreter). *)
let pinned_repros =
  [
    ( "stream read with multiple uses pops once",
      (* x0 used twice under one pop: convert_to_rv must copy the popped
         element (fmv) instead of popping the stream twice. *)
      "f64|1x1|r0|p01|M(x0,x0)" );
    ( "interleaved body register pressure",
      (* Deep body under unroll-and-jam exhausted the spill-free FP
         allocator until the interleave factor was pressure-capped. *)
      "f32|1x6x1|r1|p012;j02|M(A,M(+(x1,x1),*(x0,x0)))" );
    ( "f32 stream writes are 4 bytes wide",
      (* 64-bit stream pushes clobbered the neighbouring f32 element;
         the interleaved write order of unroll-and-jam made the clobber
         land after the element's own write. Fixed by the scfgwi slot-10
         element-width contract. *)
      "f32|2x13x1|r1|p012|+(A,x0)" );
    ( "f32 stream writes, transposed output walk",
      "f32|2x13x1|r1|p210|M(A,x0)" );
  ]

let replay_case name s () =
  let case = FC.of_string s in
  match FO.check case with
  | None -> ()
  | Some f ->
    Alcotest.failf "%s: config=%s stage=%s: %s" name f.FO.config f.FO.stage
      f.FO.detail

let pinned_cases =
  List.map
    (fun (name, s) -> Alcotest.test_case name `Quick (replay_case name s))
    pinned_repros

(* --- injected miscompile is caught ---------------------------------- *)

(* The acceptance check for the oracle itself: corrupt one FPU
   instruction of a known-good compile and make sure the bit-level
   comparison flags it (a differential harness that cannot detect a
   planted bug proves nothing). *)
let injected_miscompile () =
  let module B = Mlc_kernels.Builders in
  let case = FC.of_string "f32|2x13x1|r1|p012|+(A,x0)" in
  let spec = FC.to_spec case in
  let data =
    Mlc.Runner.gen_inputs ~seed:(FC.input_seed case) ~elem:spec.B.elem
      spec.B.args
  in
  let expected = Mlc.Runner.interp_expected spec data in
  let m = spec.B.build () in
  match FO.compile_checked "ours" Pipeline.ours m with
  | Error f -> Alcotest.failf "clean compile failed: %s" f.FO.detail
  | Ok asm ->
    let parsed = Asm_parse.parse asm in
    let victim = ref None in
    Array.iteri
      (fun i insn ->
        match (insn, !victim) with
        | Insn.Fop (Insn.Fadd, p, d, s1, s2), None ->
          victim := Some (i, Insn.Fop (Insn.Fsub, p, d, s1, s2))
        | _ -> ())
      parsed.Asm_parse.insns;
    (match !victim with
    | None -> Alcotest.fail "no fadd to corrupt in the compiled kernel"
    | Some (i, bad) -> parsed.Asm_parse.insns.(i) <- bad);
    let program = Mlc_sim.Program.of_asm parsed in
    let _, outputs, _ =
      Mlc.Runner.simulate_program ~elem:spec.B.elem ~fn_name:spec.B.fn_name
        ~args:spec.B.args ~data program
    in
    (match FO.first_bit_mismatch ~got:outputs ~want:expected with
    | Some _ -> ()
    | None -> Alcotest.fail "oracle missed the injected fadd->fsub miscompile");
    (* The report hands the user a replayable one-liner. *)
    Alcotest.(check string)
      "repro line" "snitchc fuzz --replay 'f32|2x13x1|r1|p012|+(A,x0)'"
      (Fuzz.repro_line case)

(* --- shrinker -------------------------------------------------------- *)

(* The shrinker only needs the failure predicate, so a synthetic one
   exercises it without a live compiler bug: "fails" while any bound is
   >= 13. Minimisation must preserve failure and validity and never grow
   the case. *)
let shrinker_minimizes () =
  let fails c = List.exists (fun b -> b >= 13) c.FC.bounds in
  let case = FC.of_string "f32|2x13x1|r1|p012;j02|F(x0,x1,A)" in
  Alcotest.(check bool) "original fails" true (fails case);
  let shrunk = FS.minimize ~fails case in
  Alcotest.(check bool) "shrunk still fails" true (fails shrunk);
  (match FC.validate shrunk with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shrunk case invalid: %s" m);
  Alcotest.(check bool)
    "shrinking never grows the case" true
    (String.length (FC.to_string shrunk) <= String.length (FC.to_string case))

(* --- case codec ------------------------------------------------------ *)

let codec_roundtrip () =
  for i = 0 to 199 do
    let st = Random.State.make [| 0xC0DEC; i |] in
    let c = FG.gen st in
    (match FC.validate c with
    | Ok () -> ()
    | Error m -> Alcotest.failf "generated case invalid (%d): %s" i m);
    let s = FC.to_string c in
    if FC.of_string s <> c then
      Alcotest.failf "codec round-trip failed for %s" s
  done

(* --- fuzz smoke ------------------------------------------------------ *)

(* A small deterministic slice of the real campaign runs inside the
   suite, so `dune runtest` itself exercises the whole oracle matrix. *)
let fuzz_smoke () =
  let r = Fuzz.run ~seed:7 ~count:6 () in
  match r.Fuzz.failures with
  | [] -> ()
  | fr :: _ ->
    Alcotest.failf "fuzz smoke found a mismatch: %s" (Fuzz.repro_line fr.Fuzz.shrunk)

(* --- Insn printer/parser round-trip property -------------------------- *)

(* parse . render must be the identity over the whole decoded
   instruction set (the text path of the differential oracle depends on
   it). Generator constraints mirror what render can print: csr numbers
   are rendered in hex so must be non-negative; branch targets are
   absolute pcs >= 0. *)
let gen_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm = map Int64.of_int (int_range (-4096) 4096) in
  let off = int_range (-2048) 2048 in
  let width = oneofl [ 4; 8 ] in
  let prec = oneofl [ Insn.D; Insn.S ] in
  let alu =
    oneofl
      [
        Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.And; Insn.Or; Insn.Xor;
        Insn.Slt; Insn.Sll; Insn.Sra;
      ]
  in
  let fop =
    oneofl [ Insn.Fadd; Insn.Fsub; Insn.Fmul; Insn.Fdiv; Insn.Fmax; Insn.Fmin ]
  in
  let vfop =
    oneofl [ Insn.Vfadd; Insn.Vfsub; Insn.Vfmul; Insn.Vfmax; Insn.Vfmin ]
  in
  let cond = oneofl [ Insn.Beq; Insn.Bne; Insn.Blt; Insn.Bge ] in
  let target = int_range 0 9999 in
  oneof
    [
      map2 (fun rd v -> Insn.Li (rd, v)) reg (map Int64.of_int int);
      map2 (fun rd rs -> Insn.Mv (rd, rs)) reg reg;
      map3 (fun op rd (rs1, rs2) -> Insn.Alu (op, rd, rs1, rs2))
        alu reg (pair reg reg);
      map3 (fun op rd (rs1, v) -> Insn.Alui (op, rd, rs1, v))
        alu reg (pair reg imm);
      map3 (fun w rd (o, b) -> Insn.Load (w, rd, o, b)) width reg (pair off reg);
      map3 (fun w rs (o, b) -> Insn.Store (w, rs, o, b)) width reg (pair off reg);
      map3 (fun w fd (o, b) -> Insn.Fload (w, fd, o, b)) width reg (pair off reg);
      map3 (fun w fs (o, b) -> Insn.Fstore (w, fs, o, b)) width reg (pair off reg);
      map3 (fun (op, p) fd (fs1, fs2) -> Insn.Fop (op, p, fd, fs1, fs2))
        (pair fop prec) reg (pair reg reg);
      map3 (fun (p, fd) fs1 (fs2, fs3) -> Insn.Fmadd (p, fd, fs1, fs2, fs3))
        (pair prec reg) reg (pair reg reg);
      map2 (fun fd fs -> Insn.Fmv (fd, fs)) reg reg;
      map3 (fun p fd rs -> Insn.Fcvt_from_int (p, fd, rs)) prec reg reg;
      map3 (fun p fd rs -> Insn.Fmv_from_bits (p, fd, rs)) prec reg reg;
      map3 (fun op fd (fs1, fs2) -> Insn.Vf (op, fd, fs1, fs2))
        vfop reg (pair reg reg);
      map3 (fun fd fs1 fs2 -> Insn.Vfmac (fd, fs1, fs2)) reg reg reg;
      map2 (fun fd fs -> Insn.Vfsum (fd, fs)) reg reg;
      map3 (fun fd lo hi -> Insn.Vfcpka (fd, lo, hi)) reg reg reg;
      map2 (fun rs v -> Insn.Scfgwi (rs, v)) reg (int_range 0 255);
      map2 (fun csr v -> Insn.Csrsi (csr, v)) (int_range 0 0xfff) (int_range 0 31);
      map2 (fun csr v -> Insn.Csrci (csr, v)) (int_range 0 0xfff) (int_range 0 31);
      map2 (fun rpt n -> Insn.Frep_o (rpt, n)) reg (int_range 0 64);
      map3 (fun c (rs1, rs2) t -> Insn.Branch (c, rs1, rs2, t))
        cond (pair reg reg) target;
      map (fun t -> Insn.J t) target;
      return Insn.Ret;
      return Insn.Nop;
    ]

let arb_insn = QCheck.make ~print:Asm_parse.render gen_insn

let prop_insn_roundtrip =
  QCheck.Test.make ~name:"parse (render insn) = insn" ~count:1000 arb_insn
    (fun insn ->
      let p = Asm_parse.parse (Asm_parse.render insn) in
      Array.length p.Asm_parse.insns = 1 && p.Asm_parse.insns.(0) = insn)

(* --- unroll-and-jam plans --------------------------------------------- *)

let plan_str = function
  | None -> "none"
  | Some (Unroll_jam.Whole u) -> Printf.sprintf "whole %d" u
  | Some (Unroll_jam.Split u) -> Printf.sprintf "split %d" u
  | Some (Unroll_jam.Split_epilogue (u, rem)) ->
    Printf.sprintf "split %d + tail %d" u rem

let check_plan ~cap b want =
  Alcotest.(check string)
    (Printf.sprintf "choose_factor ~cap:%d %d" cap b)
    want
    (plan_str (Unroll_jam.choose_factor ~cap b))

let choose_factor_plans () =
  check_plan ~cap:8 1 "none";
  check_plan ~cap:1 5 "none";
  check_plan ~cap:8 6 "whole 6";
  check_plan ~cap:8 8 "whole 8";
  check_plan ~cap:8 16 "split 8";
  check_plan ~cap:8 12 "split 6";
  (* primes and non-multiples get the epilogue plan *)
  check_plan ~cap:8 13 "split 8 + tail 5";
  check_plan ~cap:8 11 "split 8 + tail 3";
  check_plan ~cap:4 13 "split 4 + tail 1";
  (* 9 = 3*3 still has a divisor within the cap: no epilogue needed *)
  check_plan ~cap:8 9 "split 3"

(* --- degenerate and prime shapes across kernels and configs ----------- *)

let tolerance (spec : Mlc_kernels.Builders.spec) =
  let flops = float_of_int spec.Mlc_kernels.Builders.flops in
  1e-12 *. Float.max 1.0 flops

let run_shape ~flags name spec () =
  let r = Mlc.Runner.run ~flags spec in
  Alcotest.(check bool)
    (Printf.sprintf "%s: |err| %g within tolerance" name
       r.Mlc.Runner.max_abs_err)
    true
    (r.Mlc.Runner.max_abs_err <= tolerance spec)

let shape_cases ~tag ~flows shapes =
  List.concat_map
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.concat_map
        (fun (fname, flags) ->
          List.map
            (fun (n, m, k) ->
              let name =
                Printf.sprintf "%s %s %dx%dx%d via %s" tag
                  e.Mlc_kernels.Registry.name n m k fname
              in
              Alcotest.test_case name `Quick (fun () ->
                  let spec =
                    e.Mlc_kernels.Registry.instantiate ~n ~m ~k ()
                  in
                  run_shape ~flags name spec ()))
            shapes)
        flows)
    Mlc_kernels.Registry.table1

(* Degenerate shapes: a 1 in every position of the shape template, for
   every Table 1 kernel (bug class: epilogue/offset logic that silently
   assumed at least one full tile). *)
let degenerate_cases =
  shape_cases ~tag:"degenerate"
    ~flows:[ ("ours", Pipeline.ours); ("baseline", Pipeline.baseline) ]
    [ (1, 4, 3); (4, 1, 3); (3, 4, 1); (1, 1, 1) ]

(* Prime shapes: no divisor within the unroll caps, so both the clang
   flow's inner-loop epilogue and the ours flow's unroll-and-jam tail
   are on the hot path. *)
let prime_cases =
  shape_cases ~tag:"prime"
    ~flows:[ ("ours", Pipeline.ours); ("clang", Pipeline.clang) ]
    [ (5, 7, 13); (13, 5, 7) ]

(* The exact shape that exposed the double-counted constant offset in
   hoisted stream pointers (matmul tail base drifted by 2x). *)
let matmul_epilogue_offsets () =
  let spec = Mlc_kernels.Builders.matmul ~n:5 ~m:11 ~k:22 () in
  run_shape ~flags:Pipeline.ours "matmul 5x11x22" spec ()

let suite =
  [
    ( "fuzz",
      pinned_cases
      @ [
          Alcotest.test_case "injected miscompile is caught" `Quick
            injected_miscompile;
          Alcotest.test_case "shrinker minimises under a predicate" `Quick
            shrinker_minimizes;
          Alcotest.test_case "case codec round-trips" `Quick codec_roundtrip;
          Alcotest.test_case "fuzz smoke (seed 7)" `Slow fuzz_smoke;
          QCheck_alcotest.to_alcotest prop_insn_roundtrip;
          Alcotest.test_case "unroll-and-jam plan selection" `Quick
            choose_factor_plans;
          Alcotest.test_case "matmul epilogue stream offsets" `Quick
            matmul_epilogue_offsets;
        ] );
    ("fuzz shapes", degenerate_cases @ prime_cases);
  ]
