(* The retargetable-pipeline seam and the RVV backend.

   The refactor contract: splitting [Pipeline.passes] into
   [front_passes @ snitch_lowering] must be a no-op for Snitch — the
   pass list is the same by name, and running the two halves
   sequentially produces bit-identical IR to the one-shot pipeline for
   every registry kernel under every Snitch oracle config.

   The RVV contract: every registry kernel compiled through
   [Backend.rvv] runs on the vector execution model and reproduces the
   Snitch-compiled outputs bit-for-bit — the per-lane vector math is
   the same composition of operations as the scalar path, so even
   fused-multiply-add rounding agrees lane by lane. (Both backends sit
   exactly one fma contraction away from the reference interpreter,
   which evaluates the linalg module as written; kernels without a
   mul+add chain are bit-identical to the interpreter too.) *)

open Mlc_transforms

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let snitch_configs =
  List.filter_map
    (fun (name, flags, (b : Backend.t)) ->
      if b.Backend.name = "snitch" then Some (name, flags) else None)
    Mlc_fuzz.Fuzz_oracle.configs

let pass_names ps = List.map (fun (p : Mlc_ir.Pass.t) -> p.Mlc_ir.Pass.name) ps

(* [Backend.passes_for snitch] is [Pipeline.passes], pass for pass. *)
let test_snitch_passes_unchanged () =
  List.iter
    (fun (cname, flags) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s: passes_for snitch = front @ snitch_lowering" cname)
        (pass_names (Pipeline.passes flags))
        (pass_names (Backend.passes_for Backend.snitch flags));
      Alcotest.(check (list string))
        (Printf.sprintf "%s: passes = front_passes @ snitch_lowering" cname)
        (pass_names (Pipeline.passes flags))
        (pass_names (Pipeline.front_passes flags @ Pipeline.snitch_lowering flags)))
    snitch_configs

(* Running the front half, then the Snitch tail, is bit-identical to the
   one-shot pipeline: both the IR at the seam and the final IR print the
   same for every kernel x Snitch config. *)
let seam_cases =
  List.concat_map
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.map
        (fun (cname, flags) ->
          let name =
            Printf.sprintf "seam %s/%s" e.Mlc_kernels.Registry.name cname
          in
          Alcotest.test_case name `Quick (fun () ->
              let build () =
                let spec =
                  e.Mlc_kernels.Registry.instantiate ~n:4 ~m:6 ~k:5 ()
                in
                spec.Mlc_kernels.Builders.build ()
              in
              let split = build () and oneshot = build () in
              Mlc_ir.Pass.run ~verify_each:false split
                (Pipeline.front_passes flags);
              let front_ir = Mlc_ir.Printer.to_string split in
              Mlc_ir.Pass.run ~verify_each:false split
                (Pipeline.snitch_lowering flags);
              Mlc_ir.Pass.run ~verify_each:false oneshot (Pipeline.passes flags);
              (* The front-half checkpoint re-parses and re-prints to its
                 own text (it is genuine pipeline IR, not a print-only
                 state). *)
              Alcotest.(check string)
                (name ^ ": front-half IR is a printer fixpoint")
                front_ir
                (Mlc_ir.Printer.to_string (Mlc_ir.Parser.parse_string front_ir));
              Alcotest.(check string)
                (name ^ ": split and one-shot final IR identical")
                (Mlc_ir.Printer.to_string oneshot)
                (Mlc_ir.Printer.to_string split)))
        snitch_configs)
    Mlc_kernels.Registry.table1

(* Fail on the first lane whose bits differ between two output sets. *)
let check_bits name ~got ~want =
  List.iteri
    (fun oi (g : float array) ->
      let w = List.nth want oi in
      Alcotest.(check int)
        (Printf.sprintf "%s: output %d length" name oi)
        (Array.length w) (Array.length g);
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float w.(i) then
            Alcotest.failf "%s: output %d[%d]: got %h, want %h" name oi i x
              w.(i))
        g)
    got

let interp_tolerance (spec : Mlc_kernels.Builders.spec) =
  (* one fma contraction per reduction step away from the interpreter,
     scaled to the element width's ulp *)
  let eps =
    match spec.Mlc_kernels.Builders.elem with
    | Mlc_ir.Ty.F32 -> 1e-6
    | _ -> 1e-12
  in
  eps *. Float.max 1.0 (float_of_int spec.Mlc_kernels.Builders.flops)

let check_rvv_run ?(n = 4) ?(m = 9) ?(k = 6) name entry_spec engine =
  let spec = entry_spec ~n ~m ~k () in
  let r = Mlc.Runner.run ~engine ~backend:Backend.rvv spec in
  let snitch = Mlc.Runner.run ~engine spec in
  check_bits
    (name ^ ": rvv vs snitch-compiled outputs")
    ~got:r.Mlc.Runner.outputs ~want:snitch.Mlc.Runner.outputs;
  Alcotest.(check bool)
    (Printf.sprintf "%s: |err| %g vs interpreter within tolerance" name
       r.Mlc.Runner.max_abs_err)
    true
    (r.Mlc.Runner.max_abs_err <= interp_tolerance spec)

(* Every registry kernel through the RVV backend, on the block-fused
   engine and the reference per-instruction loop. *)
let rvv_kernel_cases =
  List.concat_map
    (fun (e : Mlc_kernels.Registry.entry) ->
      List.map
        (fun (ename, engine) ->
          let name =
            Printf.sprintf "rvv %s (%s)" e.Mlc_kernels.Registry.name ename
          in
          Alcotest.test_case name `Quick (fun () ->
              check_rvv_run name
                (fun ~n ~m ~k () ->
                  e.Mlc_kernels.Registry.instantiate ~n ~m ~k ())
                engine))
        [ ("fast", Mlc.Runner.Fast); ("reference", Mlc.Runner.Reference) ])
    Mlc_kernels.Registry.table1

(* Shapes around the VLEN=256 strip boundary (4 f64 lanes / 8 f32 lanes):
   tail strips of every length must come out exact. *)
let rvv_shape_cases =
  List.map
    (fun (n, m, k) ->
      let name = Printf.sprintf "rvv matmul %dx%dx%d" n m k in
      Alcotest.test_case name `Quick (fun () ->
          check_rvv_run ~n ~m ~k name
            (fun ~n ~m ~k () -> Mlc_kernels.Builders.matmul ~n ~m ~k ())
            Mlc.Runner.Fast))
    [ (1, 1, 1); (1, 3, 4); (2, 4, 7); (3, 5, 5); (1, 8, 16); (2, 13, 3) ]

(* f32 kernels drive the e32 vector configuration (8 lanes at VLEN=256,
   odd tails). *)
let rvv_f32_cases =
  List.map
    (fun (kname, mk) ->
      let name = Printf.sprintf "rvv %s f32" kname in
      Alcotest.test_case name `Quick (fun () ->
          check_rvv_run name mk Mlc.Runner.Fast))
    [
      ( "relu",
        fun ~n ~m ~k:_ () ->
          Mlc_kernels.Builders.relu ~elem:Mlc_ir.Ty.F32 ~n ~m () );
      ( "sum",
        fun ~n ~m ~k:_ () ->
          Mlc_kernels.Builders.sum ~elem:Mlc_ir.Ty.F32 ~n ~m () );
      ( "matmul",
        fun ~n ~m ~k () ->
          Mlc_kernels.Builders.matmul ~elem:Mlc_ir.Ty.F32 ~n ~m ~k () );
    ]

(* The rvv-compiled program actually contains vector instructions for the
   vectorizable kernels (guards against the vectorizer silently rejecting
   everything and the suite green-lighting a scalar backend). *)
let test_rvv_emits_vector_code () =
  List.iter
    (fun kernel ->
      let spec =
        (Option.get (Mlc_kernels.Registry.by_short_name kernel))
          .Mlc_kernels.Registry.instantiate ~n:4 ~m:8 ~k:4 ()
      in
      let r = Mlc.Runner.run ~backend:Backend.rvv spec in
      let has_vsetvli =
        List.exists
          (fun line ->
            let line = String.trim line in
            String.length line >= 7 && String.sub line 0 7 = "vsetvli")
          (String.split_on_char '\n' r.Mlc.Runner.asm)
      in
      Alcotest.(check bool)
        (kernel ^ ": rvv assembly contains vsetvli")
        true has_vsetvli)
    [ "fill"; "sum"; "relu"; "matmul" ]

(* passes_up_to: prefix through a named pass, and the error path listing
   the available names for the CLI message. *)
let test_passes_up_to () =
  let plist = Pipeline.passes Pipeline.ours in
  (match Pipeline.passes_up_to plist "canonicalize" with
  | Error _ -> Alcotest.fail "canonicalize should be found"
  | Ok prefix ->
    let names = pass_names prefix in
    Alcotest.(check string)
      "prefix ends at the first canonicalize" "canonicalize"
      (List.nth names (List.length names - 1));
    Alcotest.(check bool)
      "prefix is a proper prefix" true
      (List.length prefix < List.length plist));
  match Pipeline.passes_up_to plist "no-such-pass" with
  | Ok _ -> Alcotest.fail "unknown pass must be rejected"
  | Error available ->
    Alcotest.(check (list string))
      "error lists exactly the pipeline's pass names" (pass_names plist)
      available

(* The CLI pin for the error path: `snitchc compile-ir --verify-at
   <unknown>` must exit 2 with a stderr message naming the pass and
   listing the available ones. Runs the real binary (declared as a
   runtest dep in test/dune; the test executable's cwd is the test
   build directory). *)
let snitchc_exe () =
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec` *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/snitchc.exe"; "_build/default/bin/snitchc.exe" ]
  with
  | Some exe -> exe
  | None -> Alcotest.fail "snitchc.exe not built (declared as a runtest dep)"

let test_compile_ir_unknown_pass_cli () =
  let spec = Mlc_kernels.Builders.sum ~n:2 ~m:3 () in
  let m = spec.Mlc_kernels.Builders.build () in
  let tmp = Filename.get_temp_dir_name () in
  let ir = Filename.temp_file ~temp_dir:tmp "mlc-cli" ".mlir" in
  let err = Filename.temp_file ~temp_dir:tmp "mlc-cli" ".err" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ ir; err ])
    (fun () ->
      let oc = open_out ir in
      output_string oc (Mlc_ir.Printer.to_string m);
      close_out oc;
      let code =
        Sys.command
          (Printf.sprintf "%s compile-ir %s --verify-at no-such-pass 2>%s >/dev/null"
             (Filename.quote (snitchc_exe ())) (Filename.quote ir)
             (Filename.quote err))
      in
      Alcotest.(check int) "exit code 2" 2 code;
      let msg = In_channel.with_open_text err In_channel.input_all in
      Alcotest.(check bool)
        ("stderr names the missing pass: " ^ msg)
        true
        (contains msg "compile-ir: no pass named \"no-such-pass\" in flow ours");
      Alcotest.(check bool)
        ("stderr lists the available passes: " ^ msg)
        true
        (contains msg "(have: " && contains msg "convert-to-rv"))

(* Satellite: the silent-baseline fallback now warns, once per distinct
   unrecognised flag set, and the recognised named flows never warn. *)
let test_custom_fallback_warns () =
  let warnings = ref [] in
  let saved = !Pipeline.on_custom_fallback in
  Fun.protect
    ~finally:(fun () -> Pipeline.on_custom_fallback := saved)
    (fun () ->
      Pipeline.on_custom_fallback :=
        (fun d -> warnings := Mlc_diag.Diag.summary d :: !warnings);
      (* clang/mlir are recognised non-lattice starting points: they
         degrade straight to baseline with no warning. *)
      List.iter
        (fun (fname, flags) ->
          let l = Pipeline.fallback_lattice flags in
          Alcotest.(check (list string))
            (fname ^ " degrades to baseline without warning")
            [ fname; "baseline" ] (List.map fst l))
        [ ("clang", Pipeline.clang); ("mlir", Pipeline.mlir) ];
      Alcotest.(check (list string)) "no warnings for named flows" [] !warnings;
      (* A genuinely unrecognised set warns exactly once, memoised. *)
      let weird = { Pipeline.ours with Pipeline.unroll_inner = 31 } in
      let l = Pipeline.fallback_lattice weird in
      Alcotest.(check (list string))
        "custom set degrades to baseline" [ "custom"; "baseline" ]
        (List.map fst l);
      Alcotest.(check int) "exactly one warning" 1 (List.length !warnings);
      let summary = List.hd !warnings in
      Alcotest.(check bool)
        (Printf.sprintf "warning names the flag set (%s)" summary)
        true
        (contains summary "unroll_inner=31");
      ignore (Pipeline.fallback_lattice weird);
      Alcotest.(check int) "second query is memoised" 1 (List.length !warnings))

(* Satellite: --cores on a window kernel degrades to the single-core
   pipeline with a degradation record instead of failing hard. *)
let test_run_parallel_degrades () =
  let spec = Mlc_kernels.Builders.conv3x3 ~n:6 ~m:6 () in
  match Mlc.Runner.run_parallel ~cores:4 spec with
  | `Cluster _ -> Alcotest.fail "conv3x3 is not row-partitionable"
  | `Degraded r ->
    Alcotest.(check bool)
      "single-core result validates" true
      (r.Mlc.Runner.max_abs_err <= 1e-9);
    (match r.Mlc.Runner.degradation with
    | None -> Alcotest.fail "degradation record missing"
    | Some d ->
      Alcotest.(check string) "rung" "single-core" d.Mlc.Runner.rung;
      (match d.Mlc.Runner.attempts with
      | [ (rung, reason) ] ->
        Alcotest.(check string) "attempt names the core count" "cores=4" rung;
        Alcotest.(check bool)
          (Printf.sprintf "reason says not partitionable (%s)" reason)
          true
          (contains reason "not partitionable")
      | l ->
        Alcotest.fail
          (Printf.sprintf "expected one attempt, got %d" (List.length l))))

(* A partitionable kernel still takes the cluster path through the same
   front door. *)
let test_run_parallel_cluster_path () =
  let spec = Mlc_kernels.Builders.matmul ~n:8 ~m:8 ~k:8 () in
  match Mlc.Runner.run_parallel ~cores:2 spec with
  | `Degraded _ -> Alcotest.fail "matmul must row-partition"
  | `Cluster r ->
    Alcotest.(check int) "cores" 2 r.Mlc.Runner.c_cores;
    Alcotest.(check bool)
      "cluster outputs validate" true
      (r.Mlc.Runner.c_max_abs_err <= 1e-9)

let suite =
  [
    ( "rvv-backend",
      [
        Alcotest.test_case "snitch pass list unchanged by the split" `Quick
          test_snitch_passes_unchanged;
        Alcotest.test_case "rvv emits vector code" `Quick
          test_rvv_emits_vector_code;
        Alcotest.test_case "passes_up_to prefix and error path" `Quick
          test_passes_up_to;
        Alcotest.test_case "compile-ir --verify-at unknown pass (CLI)" `Quick
          test_compile_ir_unknown_pass_cli;
        Alcotest.test_case "custom fallback warns once" `Quick
          test_custom_fallback_warns;
        Alcotest.test_case "run_parallel degrades window kernels" `Quick
          test_run_parallel_degrades;
        Alcotest.test_case "run_parallel keeps the cluster path" `Quick
          test_run_parallel_cluster_path;
      ]
      @ rvv_kernel_cases @ rvv_shape_cases @ rvv_f32_cases );
    ("pipeline-seam", seam_cases);
  ]
