(* Differential contract of the block-fused execution engine
   (DESIGN.md, "Block-fused execution"): Block_exec.run and the
   per-instruction fast path Machine.run must leave bit-identical
   machine state behind — registers, TCDM bytes, every performance
   counter, final pc — and raise byte-identical trap records for the
   same fault, including the exact faulting pc of an instruction in
   the middle of a fused block (the batched counter commit must roll
   back to the per-instruction prefix). Exercised over every registry
   kernel, a 200-case seeded fuzz corpus, and handwritten
   mid-block-fault / fuel-boundary / SSR-mask-recompile scenarios. *)

open Mlc_sim
module B = Mlc_kernels.Builders
module FC = Mlc_fuzz.Fuzz_case
module FG = Mlc_fuzz.Fuzz_gen
module FO = Mlc_fuzz.Fuzz_oracle

type verdict = Finished of Machine.outcome | Trapped of Trap.t

let run_engine engine machine program ~entry : verdict =
  match engine machine program ~entry with
  | o -> Finished o
  | exception Trap.Trap t -> Trapped t

let perf_fields (p : Machine.perf) =
  [
    ("cycles", p.Machine.cycles);
    ("fpu_busy", p.Machine.fpu_busy);
    ("flops", p.Machine.flops);
    ("loads", p.Machine.loads);
    ("stores", p.Machine.stores);
    ("freps", p.Machine.freps);
    ("retired", p.Machine.retired);
    ("stream_reads", p.Machine.stream_reads);
    ("stream_writes", p.Machine.stream_writes);
  ]

(* First difference between two (machine, verdict) pairs, or None when
   the block engine's state is bit-identical to the per-instruction
   engine's. Order: outcome shape, trap record, final pc, counters,
   registers, memory — so the report names the most telling divergence. *)
let state_mismatch (ma : Machine.t) va (mb : Machine.t) vb =
  let ( >>> ) a b = match a with Some _ -> a | None -> b () in
  let verdicts () =
    match (va, vb) with
    | Finished a, Finished b ->
      if a.Machine.final_pc <> b.Machine.final_pc then
        Some
          (Printf.sprintf "final pc: block=%d per-insn=%d" a.Machine.final_pc
             b.Machine.final_pc)
      else None
    | Trapped a, Trapped b ->
      if a <> b then
        Some
          (Printf.sprintf "trap records differ:\nblock:\n%s\nper-insn:\n%s"
             (Trap.to_string a) (Trap.to_string b))
      else None
    | Finished _, Trapped t ->
      Some ("block finished but per-insn trapped: " ^ Trap.summary t)
    | Trapped t, Finished _ ->
      Some ("block trapped but per-insn finished: " ^ Trap.summary t)
  in
  let counters () =
    List.fold_left2
      (fun acc (name, a) (_, b) ->
        match acc with
        | Some _ -> acc
        | None ->
          if a <> b then
            Some (Printf.sprintf "perf.%s: block=%d per-insn=%d" name a b)
          else None)
      None
      (perf_fields ma.Machine.perf)
      (perf_fields mb.Machine.perf)
  in
  let regs () =
    let diff tag get =
      let r = ref None in
      for i = 31 downto 0 do
        let a = get ma i and b = get mb i in
        if a <> b then
          r :=
            Some
              (Printf.sprintf "%s%d: block=%Lx per-insn=%Lx" tag i a b)
      done;
      !r
    in
    match diff "x" Machine.get_ireg with
    | Some _ as d -> d
    | None -> diff "f" Machine.get_freg_raw
  in
  let memory () =
    if Bytes.equal ma.Machine.mem.Mem.bytes mb.Machine.mem.Mem.bytes then None
    else Some "TCDM contents differ"
  in
  verdicts () >>> counters >>> regs >>> memory

let check_identical name ma va mb vb =
  match state_mismatch ma va mb vb with
  | None -> ()
  | Some msg -> Alcotest.failf "%s: %s" name msg

(* Run one pre-decoded program through both engines on identically
   prepared fresh machines and demand bit-identical end state. *)
let diff_program ?fuel ?(setup = fun (_ : Machine.t) -> ()) ~entry name
    program =
  let run engine =
    let m = Machine.create ?fuel () in
    setup m;
    let v = run_engine engine m program ~entry in
    (m, v)
  in
  let bm, bv = run (fun m p ~entry -> Block_exec.run m p ~entry) in
  let pm, pv = run (fun m p ~entry -> Machine.run m p ~entry) in
  check_identical name bm bv pm pv;
  (bm, bv)

let diff_asm ?fuel ?setup name asm =
  diff_program ?fuel ?setup ~entry:"main" name
    (Program.of_asm (Asm_parse.parse asm))

(* --- every registry kernel ------------------------------------------- *)

(* Full-state differential (deeper than the Runner-level metrics
   comparison in test_perf_model): compile each Table 1 kernel, load the
   same deterministic inputs into two machines, and compare everything. *)
let diff_spec name (spec : B.spec) =
  let m = spec.B.build () in
  let compiled =
    Mlc_transforms.Pipeline.compile ~flags:Mlc_transforms.Pipeline.ours m
  in
  let program =
    Program.of_asm (Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm)
  in
  let data = Mlc.Runner.gen_inputs ~seed:11 ~elem:spec.B.elem spec.B.args in
  let setup machine =
    ignore (Mlc.Runner.setup_machine ~elem:spec.B.elem machine spec.B.args data)
  in
  ignore (diff_program ~setup ~entry:spec.B.fn_name name program)

let test_registry_differential () =
  List.iter
    (fun (e : Mlc_kernels.Registry.entry) ->
      diff_spec e.Mlc_kernels.Registry.name
        (e.Mlc_kernels.Registry.instantiate ~n:8 ~m:8 ~k:8 ()))
    Mlc_kernels.Registry.table1

(* --- seeded fuzz corpus ----------------------------------------------- *)

(* The qcheck property: a generated linalg case, compiled through the
   production pipeline, executes bit-identically on both engines. Cases
   the compiler rejects are the fuzz oracle's concern, not this
   property's — skip them. *)
let fuzz_case_identical seed =
  let case = FG.gen (Random.State.make [| seed; 0xB10C |]) in
  match FC.validate case with
  | Error _ -> true
  | Ok () -> (
    let spec = FC.to_spec case in
    let m = spec.B.build () in
    match FO.compile_checked "ours" Mlc_transforms.Pipeline.ours m with
    | Error _ | (exception _) -> true
    | Ok asm ->
      let program = Program.of_asm (Asm_parse.parse asm) in
      let data =
        Mlc.Runner.gen_inputs ~seed:(FC.input_seed case) ~elem:spec.B.elem
          spec.B.args
      in
      let setup machine =
        ignore
          (Mlc.Runner.setup_machine ~elem:spec.B.elem machine spec.B.args data)
      in
      let run engine =
        let machine = Machine.create () in
        setup machine;
        let v = run_engine engine machine program ~entry:spec.B.fn_name in
        (machine, v)
      in
      let bm, bv = run (fun m p ~entry -> Block_exec.run m p ~entry) in
      let pm, pv = run (fun m p ~entry -> Machine.run m p ~entry) in
      (match state_mismatch bm bv pm pv with
      | None -> true
      | Some msg ->
        QCheck.Test.fail_reportf "case %s: %s" (FC.to_string case) msg))

let prop_fuzz_differential =
  QCheck.Test.make ~name:"block engine = per-insn engine (fuzz corpus)"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 0xFFFFFF))
    fuzz_case_identical

(* --- handwritten fault scenarios -------------------------------------- *)

let expect_trap name v ~pc ~kind_check =
  match v with
  | Finished _ -> Alcotest.failf "%s: expected a trap, program finished" name
  | Trapped t ->
    Alcotest.(check int) (name ^ " faulting pc") pc t.Trap.pc;
    Alcotest.(check bool) (name ^ " trap kind") true (kind_check t.Trap.kind)

let is_access_fault = function Trap.Access_fault _ -> true | _ -> false
let is_stream_fault = function Trap.Stream_fault _ -> true | _ -> false
let is_out_of_fuel = function Trap.Out_of_fuel -> true | _ -> false

(* An integer store faulting in the middle of a fused straight-line
   block: the trap must name the store's own pc (not the block head) and
   the counter rollback must leave the pre-fault prefix intact. *)
let test_midblock_store_fault () =
  let _, v =
    diff_asm "mid-block sd fault"
      "main:\n\
      \    li t0, 4096\n\
      \    li t1, 1234\n\
      \    li t2, 99\n\
      \    sd t1, 0(t0)\n\
      \    li t3, 7\n\
      \    ret"
  in
  expect_trap "mid-block sd fault" v ~pc:3 ~kind_check:is_access_fault

(* FP load and store faults: loads/stores are counted *before* the
   access on the FP path (the faulting instruction contributes 1), so
   these pin the asymmetric b_adj_* rollback. *)
let test_midblock_fp_faults () =
  let _, v =
    diff_asm "mid-block fsd fault"
      "main:\n\
      \    li t0, 4096\n\
      \    fadd.d ft3, ft4, ft4\n\
      \    fsd ft3, 0(t0)\n\
      \    li t1, 5\n\
      \    ret"
  in
  expect_trap "mid-block fsd fault" v ~pc:2 ~kind_check:is_access_fault;
  let _, v =
    diff_asm "mid-block fld fault"
      "main:\n\
      \    li t0, 4096\n\
      \    li t1, 1\n\
      \    fld ft3, 0(t0)\n\
      \    ret"
  in
  expect_trap "mid-block fld fault" v ~pc:2 ~kind_check:is_access_fault

(* Reading an unconfigured SSR stream inside a fused block, right after
   the csrsi barrier that enabled streaming. *)
let test_midblock_stream_fault () =
  let _, v =
    diff_asm "unconfigured stream read"
      "main:\n\
      \    li t5, 1\n\
      \    csrsi 0x7c0, 1\n\
      \    fadd.d ft3, ft1, ft1\n\
      \    fadd.d ft4, ft3, ft3\n\
      \    ret"
  in
  expect_trap "unconfigured stream read" v ~pc:2 ~kind_check:is_stream_fault

(* Fuel boundaries: the fused path only runs a block when fuel strictly
   exceeds its length, so exhaustion always surfaces on the
   per-instruction path at the exact instruction — sweep every boundary
   around a 6-instruction program and demand identical outcomes. *)
let test_fuel_boundaries () =
  let asm =
    "main:\n\
    \    li t0, 1\n\
    \    li t1, 2\n\
    \    li t2, 3\n\
    \    li t3, 4\n\
    \    li t4, 5\n\
    \    ret"
  in
  for fuel = 1 to 9 do
    let name = Printf.sprintf "fuel=%d" fuel in
    let _, v = diff_asm ~fuel name asm in
    if fuel <= 6 then
      (* burn_fuel decrements then checks: the instruction consuming the
         last unit is the one that traps. *)
      expect_trap name v ~pc:(fuel - 1) ~kind_check:is_out_of_fuel
    else
      match v with
      | Finished o -> Alcotest.(check int) (name ^ " final pc") 5 o.Machine.final_pc
      | Trapped t -> Alcotest.failf "%s: unexpected %s" name (Trap.summary t)
  done

(* The same fused block executed first with streaming off, then with
   streaming on: the cached closure was compiled against the old SSR
   mask and must be recompiled, switching ft0 from a plain register read
   to a stream pop. A stale closure diverges from the per-instruction
   engine in both values and stream counters. *)
let test_mask_change_recompiles () =
  let asm =
    "main:\n\
    \    li t0, 0\n\
    \    scfgwi t0, 8\n\
    \    li t0, 3\n\
    \    scfgwi t0, 16\n\
    \    li t0, 8\n\
    \    scfgwi t0, 48\n\
    \    scfgwi a0, 192\n\
    \    li t1, 0\n\
    \    li t2, 2\n\
    loop:\n\
    \    fadd.d ft3, ft0, ft0\n\
    \    fadd.d ft4, ft3, ft3\n\
    \    addi t1, t1, 1\n\
    \    csrsi 0x7c0, 1\n\
    \    blt t1, t2, loop\n\
    \    csrci 0x7c0, 1\n\
    \    ret"
  in
  let setup (m : Machine.t) =
    for i = 0 to 3 do
      Mem.store_f64 m.Machine.mem
        (Mem.tcdm_base + (8 * i))
        (float_of_int (i + 1))
    done;
    Machine.set_ireg m 10 (Int64.of_int Mem.tcdm_base)
  in
  let bm, v = diff_asm ~setup "ssr mask change recompiles" asm in
  (match v with
  | Trapped t -> Alcotest.failf "unexpected %s" (Trap.summary t)
  | Finished _ -> ());
  (* Second iteration really streamed: two pops of ft0. *)
  Alcotest.(check int) "stream reads" 2 bm.Machine.perf.Machine.stream_reads

(* Sanity that the scenarios above exercise the fused path at all: the
   partitioner must have produced at least one multi-instruction block
   for a straight-line program. *)
let test_partition_sanity () =
  let p =
    Program.of_asm
      (Asm_parse.parse "main:\n    li t0, 1\n    li t1, 2\n    ret")
  in
  match p.Program.blocks.(0) with
  | Some b ->
    Alcotest.(check int) "block head" 0 b.Program.b_first;
    Alcotest.(check int) "block length" 3 b.Program.b_len
  | None -> Alcotest.fail "straight-line program produced no fused block"

let suite =
  [
    ( "block_exec",
      [
        Alcotest.test_case "registry kernels: full-state differential" `Quick
          test_registry_differential;
        QCheck_alcotest.to_alcotest prop_fuzz_differential;
        Alcotest.test_case "mid-block store fault pc + rollback" `Quick
          test_midblock_store_fault;
        Alcotest.test_case "mid-block FP load/store fault pc" `Quick
          test_midblock_fp_faults;
        Alcotest.test_case "mid-block stream fault after csrsi" `Quick
          test_midblock_stream_fault;
        Alcotest.test_case "fuel boundaries around block length" `Quick
          test_fuel_boundaries;
        Alcotest.test_case "SSR mask change recompiles the block" `Quick
          test_mask_change_recompiles;
        Alcotest.test_case "partitioner fuses straight-line code" `Quick
          test_partition_sanity;
      ] );
  ]
