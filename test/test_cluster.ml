(* Multi-core cluster simulation: output bit-identity across core
   counts, engines and host -j; DMA/barrier wrapper correctness over
   the kernel registry; trap isolation at the fuel boundary; the fig10
   speedup contract; per-domain phase-attribution determinism. *)

open Mlc_kernels
open Mlc_sim

let bits outs = List.map (fun a -> Array.map Int64.bits_of_float a) outs

let check_bits_equal name a b =
  Alcotest.(check (list (array int64))) name (bits a) (bits b)

(* --- output bit-identity across core counts and engines --- *)

let test_identity_across_cores () =
  let spec () = Builders.matmul ~n:8 ~m:16 ~k:16 () in
  let single = Mlc.Runner.run (spec ()) in
  Alcotest.(check bool) "single-core valid" true (single.Mlc.Runner.max_abs_err < 1e-9);
  List.iter
    (fun cores ->
      let r = Mlc.Runner.run_cluster ~cores (spec ()) in
      check_bits_equal
        (Printf.sprintf "outputs at --cores %d == single-core" cores)
        single.Mlc.Runner.outputs r.Mlc.Runner.c_outputs;
      (* A 1-core cluster's barrier is a nop (nothing to rendezvous
         with), so it finishes in one epoch; real clusters take two. *)
      Alcotest.(check int)
        (Printf.sprintf "every core arrives at the barrier (--cores %d)" cores)
        (if cores = 1 then 1 else 2)
        r.Mlc.Runner.c_epochs)
    [ 1; 2; 4; 8 ]

let test_identity_across_engines () =
  let spec () = Builders.matmul ~n:8 ~m:16 ~k:16 () in
  let fast = Mlc.Runner.run_cluster ~cores:4 (spec ()) in
  List.iter
    (fun (name, engine) ->
      let r = Mlc.Runner.run_cluster ~engine ~cores:4 (spec ()) in
      check_bits_equal (name ^ ": outputs") fast.Mlc.Runner.c_outputs
        r.Mlc.Runner.c_outputs;
      Alcotest.(check int)
        (name ^ ": makespan")
        fast.Mlc.Runner.c_makespan r.Mlc.Runner.c_makespan;
      Alcotest.(check (array int))
        (name ^ ": conflicts")
        fast.Mlc.Runner.c_conflicts r.Mlc.Runner.c_conflicts;
      Alcotest.(check (array int))
        (name ^ ": per-core cycles")
        (Array.map (fun (m : Mlc.Runner.metrics) -> m.Mlc.Runner.cycles)
           fast.Mlc.Runner.c_per_core)
        (Array.map (fun (m : Mlc.Runner.metrics) -> m.Mlc.Runner.cycles)
           r.Mlc.Runner.c_per_core))
    [ ("per-insn", Mlc.Runner.Per_insn); ("reference", Mlc.Runner.Reference) ]

let test_identity_across_jobs () =
  let spec () = Builders.matmul ~n:16 ~m:32 ~k:32 () in
  let base = Mlc.Runner.run_cluster ~cores:8 (spec ()) in
  Mlc_parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let r = Mlc.Runner.run_cluster ~pool ~cores:8 (spec ()) in
      check_bits_equal "-j 4 outputs == -j 1" base.Mlc.Runner.c_outputs
        r.Mlc.Runner.c_outputs;
      Alcotest.(check int) "-j 4 makespan == -j 1" base.Mlc.Runner.c_makespan
        r.Mlc.Runner.c_makespan;
      Alcotest.(check (array int))
        "-j 4 conflicts == -j 1" base.Mlc.Runner.c_conflicts
        r.Mlc.Runner.c_conflicts)

(* --- the registry beyond matmul: partitionable and not --- *)

let test_registry_kernels () =
  List.iter
    (fun (name, spec) ->
      let r = Mlc.Runner.run_cluster ~cores:4 spec in
      Alcotest.(check bool)
        (name ^ " validates against the interpreter")
        true
        (r.Mlc.Runner.c_max_abs_err < 1e-9))
    [
      ("relu", Builders.relu ~n:8 ~m:8 ());
      ("sum", Builders.sum ~n:8 ~m:8 ());
      ("fill", Builders.fill ~n:8 ~m:8 ());
      ("matmul_t", Builders.matmul_t ~n:8 ~m:16 ~k:8 ());
    ]

let test_window_kernels_rejected () =
  List.iter
    (fun (name, spec) ->
      match Mlc.Runner.run_cluster ~cores:4 spec with
      | _ -> Alcotest.failf "%s should not row-partition" name
      | exception Mlc_transforms.Parallel_tile.Not_partitionable _ -> ())
    [
      ("conv3x3", Builders.conv3x3 ~n:8 ~m:8 ());
      ("max_pool", Builders.max_pool ~n:8 ~m:8 ());
    ]

(* --- fuel boundary: a trapping core must not disturb the others --- *)

(* Two hand-built cores: core 0 stores a sentinel and reaches the
   barrier; core 1 spins until its fuel runs out mid-epoch. *)
let fuel_cluster engine =
  let label = "main" in
  let prog insns =
    let labels = Hashtbl.create 1 in
    Hashtbl.replace labels label 0;
    Program.make ~insns ~labels ()
  in
  let addr = Mem.tcdm_base + 64 in
  let p0 =
    prog
      [|
        Insn.Li (5, Int64.of_int addr);
        Insn.Li (6, 0x5EED_CAFEL);
        Insn.Store (8, 6, 0, 5);
        Insn.Barrier;
        Insn.Ret;
      |]
  in
  let p1 = prog [| Insn.J 0 |] in
  let shared = Mem.create () in
  let m0 = Machine.create ~mem:shared ~core_id:0 ~num_cores:2 () in
  let m1 =
    Machine.create ~mem:(Mem.view shared) ~fuel:1000 ~core_id:1 ~num_cores:2 ()
  in
  match Cluster.run ~engine [| (m0, p0, label); (m1, p1, label) |] with
  | _ -> Alcotest.fail "core 1 should run out of fuel"
  | exception Trap.Trap tr -> (tr, m0, shared)

let test_fuel_trap_isolation () =
  let tr_fast, m0_fast, mem_fast = fuel_cluster Cluster.fast in
  let tr_ref, m0_ref, mem_ref = fuel_cluster Cluster.per_insn in
  (* The trap is attributed to the spinning core, at its pc. *)
  Alcotest.(check int) "trap core" 1 tr_fast.Trap.core;
  (match tr_fast.Trap.kind with
  | Trap.Out_of_fuel -> ()
  | k -> Alcotest.failf "unexpected trap kind: %s" (Trap.describe_kind k));
  Alcotest.(check bool)
    "summary names the core" true
    (String.length (Trap.summary tr_fast) > 0
    && String.sub (Trap.summary tr_fast) 0 15 = "trap on core 1 ");
  (* Trap records are bit-identical between the block-fused and
     per-instruction engines. *)
  Alcotest.(check string) "trap record (engines)" (Trap.to_string tr_ref)
    (Trap.to_string tr_fast);
  (* Core 0 finished its epoch undisturbed: counters identical across
     engines, its store landed, and nothing else in the TCDM moved. *)
  Alcotest.(check int) "core 0 retired" m0_ref.Machine.perf.Machine.retired
    m0_fast.Machine.perf.Machine.retired;
  Alcotest.(check int64) "core 0 store landed" 0x5EED_CAFEL
    (Mem.load64 mem_fast (Mem.tcdm_base + 64));
  Alcotest.(check bytes) "TCDM image identical across engines"
    mem_ref.Mem.bytes mem_fast.Mem.bytes

(* --- the acceptance speedup: fig10-class matmul, 8 cores vs 1 --- *)

let test_speedup () =
  let spec () = Builders.matmul ~n:16 ~m:64 ~k:32 () in
  let r1 = Mlc.Runner.run_cluster ~cores:1 (spec ()) in
  let r8 = Mlc.Runner.run_cluster ~cores:8 (spec ()) in
  check_bits_equal "outputs identical 1 vs 8 cores" r1.Mlc.Runner.c_outputs
    r8.Mlc.Runner.c_outputs;
  let speedup =
    float_of_int r1.Mlc.Runner.c_makespan /. float_of_int r8.Mlc.Runner.c_makespan
  in
  if speedup < 4.0 then
    Alcotest.failf "8-core speedup %.2fx < 4x (makespan %d -> %d)" speedup
      r1.Mlc.Runner.c_makespan r8.Mlc.Runner.c_makespan

(* --- per-domain phase attribution: counts deterministic across -j --- *)

let phase_counts ~jobs =
  Mlc.Runner.reset_phases ();
  Mlc_parallel.Pool.with_pool ~jobs (fun pool ->
      let results =
        Mlc_parallel.Pool.map pool
          (fun (n, m, k) ->
            let r =
              Mlc.Runner.run ~cache:false (Builders.matmul ~n ~m ~k ())
            in
            assert (r.Mlc.Runner.max_abs_err < 1e-9);
            Mlc.Runner.drain_phases ())
          [ (4, 8, 8); (8, 16, 16); (4, 16, 8); (8, 8, 8) ]
      in
      List.iter Mlc.Runner.commit_phases results);
  let p = Mlc.Runner.phases () in
  (p.Mlc.Runner.load_n, p.Mlc.Runner.compile_n, p.Mlc.Runner.sim_n)

let test_phase_count_determinism () =
  let l1, c1, s1 = phase_counts ~jobs:1 in
  let l4, c4, s4 = phase_counts ~jobs:4 in
  Alcotest.(check (triple int int int))
    "-j 4 phase counts == -j 1" (l1, c1, s1) (l4, c4, s4);
  (* Sanity: 4 uncached runs = 4 compiles, 4 loads, 4 sims. *)
  Alcotest.(check (triple int int int)) "expected counts" (4, 4, 4) (l4, c4, s4)

let suite =
  [
    ( "cluster",
      [
        Alcotest.test_case "identity across core counts" `Quick
          test_identity_across_cores;
        Alcotest.test_case "identity across engines" `Quick
          test_identity_across_engines;
        Alcotest.test_case "identity across -j" `Quick test_identity_across_jobs;
        Alcotest.test_case "registry kernels partition" `Quick
          test_registry_kernels;
        Alcotest.test_case "window kernels rejected" `Quick
          test_window_kernels_rejected;
        Alcotest.test_case "fuel trap isolation" `Quick test_fuel_trap_isolation;
        Alcotest.test_case "8-core speedup >= 4x" `Slow test_speedup;
        Alcotest.test_case "phase counts deterministic" `Quick
          test_phase_count_determinism;
      ] );
  ]
