(* Unit tests for the individual lowering and optimisation passes. *)

open Mlc_ir
open Mlc_dialects
open Mlc_transforms

let generic_of m =
  List.hd (Ir.collect m (fun op -> Ir.Op.name op = Memref_stream.generic_op))

let generics_of m =
  Ir.collect m (fun op -> Ir.Op.name op = Memref_stream.generic_op)

let matmul_spec ?(n = 2) ?(m = 4) ?(k = 3) () =
  Mlc_kernels.Builders.matmul ~n ~m ~k ()

(* --- linalg -> memref_stream --- *)

let test_linalg_to_stream_bounds () =
  let spec = matmul_spec () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m [ Linalg_to_stream.pass ];
  let gs = generics_of m in
  Alcotest.(check int) "fill + compute" 2 (List.length gs);
  let compute =
    List.find (fun g -> Memref_stream.num_ins g = 2) gs
  in
  Alcotest.(check (list int)) "bounds explicit" [ 2; 4; 3 ]
    (Memref_stream.bounds compute);
  Alcotest.(check bool) "parallel dims first" true
    (Memref_stream.iterator_types compute
    = [ Attr.Parallel; Attr.Parallel; Attr.Reduction ])

let test_fill_becomes_generic () =
  let spec = Mlc_kernels.Builders.fill ~n:3 ~m:5 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m [ Linalg_to_stream.pass ];
  let g = generic_of m in
  Alcotest.(check (list int)) "fill bounds are the shape" [ 3; 5 ]
    (Memref_stream.bounds g);
  Alcotest.(check int) "no linalg left" 0
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Linalg.fill_op)))

(* --- scalar replacement + fuse fill --- *)

let test_scalar_replacement_marks () =
  let spec = matmul_spec () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m [ Linalg_to_stream.pass; Scalar_replacement.pass ];
  let compute = List.find (fun g -> Memref_stream.num_ins g = 2) (generics_of m) in
  Alcotest.(check bool) "reduction generic marked" true
    (Scalar_replacement.is_marked compute);
  let fill = List.find (fun g -> Memref_stream.num_ins g = 1) (generics_of m) in
  Alcotest.(check bool) "parallel generic unmarked" false
    (Scalar_replacement.is_marked fill)

let test_fuse_fill () =
  let spec = matmul_spec () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m [ Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass ];
  let gs = generics_of m in
  Alcotest.(check int) "fill fused away" 1 (List.length gs);
  Alcotest.(check int) "consumer gained an init" 1
    (Memref_stream.num_inits (List.hd gs))

let test_fuse_fill_requires_adjacent_buffer () =
  (* Two fills of DIFFERENT buffers: only the matching one may fuse. *)
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"f"
      ~args:[ Ty.memref [ 4 ] Ty.F64; Ty.memref [ 4 ] Ty.F64; Ty.memref [ 1 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let x = Ir.Block.arg entry 0
  and other = Ir.Block.arg entry 1
  and out = Ir.Block.arg entry 2 in
  let zero = Arith.const_float bb 0.0 in
  Linalg.fill bb zero other;
  Linalg.fill bb zero out;
  let x_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.dim 0 ] in
  let out_map = Affine.make ~num_dims:1 ~num_syms:0 [ Affine.const 0 ] in
  ignore
    (Linalg.generic bb ~ins:[ x ] ~outs:[ out ] ~maps:[ x_map; out_map ]
       ~iterators:[ Attr.Reduction ]
       (fun bb ins outs -> [ Arith.addf bb (List.hd outs) (List.hd ins) ]));
  Func.return_ bb [];
  Pass.run m [ Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass ];
  (* The fill of [other] must survive; the fill of [out] must be fused. *)
  Alcotest.(check int) "one generic fused, one fill left" 2
    (List.length (generics_of m))

(* --- unroll and jam --- *)

let test_unroll_jam_interleaves () =
  let spec = matmul_spec ~n:2 ~m:4 ~k:3 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m
    [ Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass; Unroll_jam.pass ];
  let g = List.hd (generics_of m) in
  Alcotest.(check int) "unroll factor 4" 4 (Memref_stream.unroll_factor g);
  let iters = Memref_stream.iterator_types g in
  Alcotest.(check bool) "trailing interleaved" true
    (List.nth iters (List.length iters - 1) = Attr.Interleaved);
  (* body replicated: 3 operands (2 in + 1 out) x 4 copies of args *)
  Alcotest.(check int) "body args replicated" 12
    (Ir.Block.num_args (Memref_stream.body g))

let test_unroll_jam_splits_large_dims () =
  let spec = matmul_spec ~n:2 ~m:24 ~k:3 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m
    [ Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass; Unroll_jam.pass ];
  let g = List.hd (generics_of m) in
  (* 24 = 3 x 8: largest divisor in [4..8] is 8. *)
  Alcotest.(check int) "split factor 8" 8 (Memref_stream.unroll_factor g);
  Alcotest.(check (list int)) "bounds split" [ 2; 3; 3; 8 ] (Memref_stream.bounds g)

let test_unroll_jam_skips_parallel_kernels () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m [ Linalg_to_stream.pass; Scalar_replacement.pass; Unroll_jam.pass ];
  Alcotest.(check int) "no interleaving without reduction" 1
    (Memref_stream.unroll_factor (generic_of m))

(* --- stream patterns --- *)

let resolved ub strides = { Stream_patterns.ub; strides; offset = 0 }

let test_pattern_contiguity_collapse () =
  (* Row-major 4x8 f64 fully contiguous: collapses to one dim. *)
  let p = Stream_patterns.optimize (resolved [ 4; 8 ] [ 64; 8 ]) in
  Alcotest.(check (list int)) "ub merged" [ 32 ] p.Stream_patterns.ub;
  Alcotest.(check (list int)) "stride 8" [ 8 ] p.Stream_patterns.strides

let test_pattern_unit_dims_dropped () =
  let p = Stream_patterns.optimize (resolved [ 1; 5; 1 ] [ 0; 8; 0 ]) in
  Alcotest.(check (list int)) "unit dims dropped" [ 5 ] p.Stream_patterns.ub

let test_pattern_repeat_detection () =
  let rep, body =
    Stream_patterns.split_repeat (Stream_patterns.optimize (resolved [ 10; 4 ] [ 8; 0 ]))
  in
  Alcotest.(check int) "repeat = 3" 3 rep;
  Alcotest.(check (list int)) "body remains" [ 10 ] body.Stream_patterns.ub

let test_pattern_resolution_strides () =
  (* Map (d0, d1, d2) -> (d0*5+d2, d1) into a 5x200 f64 buffer:
     strides (bytes): d0 -> 5*200*8, d1 -> 8, d2 -> 200*8. *)
  let map =
    Affine.make ~num_dims:3 ~num_syms:0
      Affine.[ add (mul (dim 0) (const 5)) (dim 2); dim 1 ]
  in
  let p =
    Stream_patterns.resolve ~bounds:[ 1; 200; 5 ] ~map
      ~mem_strides:[ 200; 1 ] ~elem_size:8
  in
  Alcotest.(check (list int)) "strides" [ 8000; 8; 1600 ] p.Stream_patterns.strides;
  Alcotest.(check int) "no offset" 0 p.Stream_patterns.offset

(* Property: optimisation preserves the generated address sequence. *)
let addresses (p : Stream_patterns.resolved) ~repeat =
  let dims = List.combine p.Stream_patterns.ub p.Stream_patterns.strides in
  let acc = ref [] in
  let rec go addr = function
    | [] ->
      for _ = 0 to repeat do
        acc := addr :: !acc
      done
    | (ub, stride) :: rest ->
      for i = 0 to ub - 1 do
        go (addr + (i * stride)) rest
      done
  in
  go 0 dims;
  List.rev !acc

let gen_pattern =
  QCheck.Gen.(
    let dim = pair (int_range 1 4) (oneofl [ 0; 8; 16; 24; 64 ]) in
    list_size (int_range 1 4) dim >|= fun dims ->
    resolved (List.map fst dims) (List.map snd dims))

let arb_pattern =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "ub=[%s] strides=[%s]"
        (String.concat ";" (List.map string_of_int p.Stream_patterns.ub))
        (String.concat ";" (List.map string_of_int p.Stream_patterns.strides)))
    gen_pattern

let prop_optimize_preserves_addresses =
  QCheck.Test.make ~name:"pattern optimisation preserves the address sequence"
    ~count:300 arb_pattern (fun p ->
      let original = addresses p ~repeat:0 in
      let rep, body = Stream_patterns.split_repeat (Stream_patterns.optimize p) in
      let optimised = addresses body ~repeat:rep in
      original = optimised)

(* --- fma fusion and canonicalisation --- *)

let test_fma_fusion () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"f" ~args:[ Ty.F64; Ty.F64; Ty.F64; Ty.memref [ 1 ] Ty.F64 ]
      ~results:[]
  in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0
  and x = Ir.Block.arg entry 1
  and c = Ir.Block.arg entry 2
  and out = Ir.Block.arg entry 3 in
  let r = Arith.addf bb c (Arith.mulf bb a x) in
  let zero = Arith.const_index bb 0 in
  Memref.store bb r out [ zero ];
  Func.return_ bb [];
  Pass.run m [ Fma_fusion.pass ];
  Alcotest.(check int) "fmaf formed" 1
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Arith.fmaf_op)));
  Alcotest.(check int) "mulf gone" 0
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Arith.mulf_op)))

let test_fma_fusion_respects_multiple_uses () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry =
    Func.func b ~name:"f" ~args:[ Ty.F64; Ty.memref [ 2 ] Ty.F64 ] ~results:[]
  in
  let bb = Builder.at_end entry in
  let a = Ir.Block.arg entry 0 and out = Ir.Block.arg entry 1 in
  let p = Arith.mulf bb a a in
  let s = Arith.addf bb p a in
  let zero = Arith.const_index bb 0 in
  let one = Arith.const_index bb 1 in
  Memref.store bb p out [ zero ];
  Memref.store bb s out [ one ];
  Func.return_ bb [];
  Pass.run m [ Fma_fusion.pass ];
  Alcotest.(check int) "multi-use mulf kept" 1
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Arith.mulf_op)))

let test_canonicalize_folds_and_dce () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[ Ty.memref [ 64 ] Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let out = Ir.Block.arg entry 0 in
  let c2 = Arith.const_index bb 2 in
  let c3 = Arith.const_index bb 3 in
  let c6 = Arith.muli bb c2 c3 in
  let c7 = Arith.addi bb c6 (Arith.const_index bb 1) in
  let _dead = Arith.muli bb c7 c7 in
  let v = Arith.const_float bb 1.0 in
  Memref.store bb v out [ c7 ];
  Func.return_ bb [];
  Pass.run m [ Canonicalize.pass ];
  (* Everything folds into a single index constant. *)
  let consts = Ir.collect m (fun op -> Ir.Op.name op = Arith.constant_op) in
  Alcotest.(check bool) "constants folded and dead code removed" true
    (List.length consts <= 3);
  Alcotest.(check int) "no muli left" 0
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Arith.muli_op)))

(* --- stream analysis --- *)

let test_stream_analysis_matmul () =
  let spec = matmul_spec () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m
    [
      Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass;
      Unroll_jam.pass; Create_streams.pass;
    ];
  let g = List.hd (generics_of m) in
  Alcotest.(check (list int)) "A, B and C all stream" [ 0; 1; 2 ]
    (Create_streams.annotated_stream_operands g);
  Alcotest.(check int) "no hoisting needed" 0 (Create_streams.hoist_depth g)

let test_stream_analysis_hoists_conv () =
  let spec = Mlc_kernels.Builders.conv3x3 ~n:8 ~m:16 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m
    [
      Linalg_to_stream.pass; Scalar_replacement.pass; Fuse_fill.pass;
      Unroll_jam.pass; Create_streams.pass;
    ];
  let g =
    List.find (fun g -> Memref_stream.num_ins g = 2) (generics_of m)
  in
  (* After unroll-and-jam the image pattern needs 5 dims; one parallel
     dim must hoist to fit the 4-dim address generators. *)
  Alcotest.(check bool) "conv hoists at least one dim" true
    (Create_streams.hoist_depth g >= 1);
  Alcotest.(check bool) "image input streams" true
    (List.mem 0 (Create_streams.annotated_stream_operands g))

let test_stream_analysis_skips_rmw_output () =
  let spec = matmul_spec () in
  let m = spec.Mlc_kernels.Builders.build () in
  (* No scalar replacement / fuse fill: output is read-modify-write. *)
  Pass.run m [ Linalg_to_stream.pass; Create_streams.pass ];
  let compute = List.find (fun g -> Memref_stream.num_ins g = 2) (generics_of m) in
  let streamed = Create_streams.annotated_stream_operands compute in
  Alcotest.(check bool) "inputs stream, RMW output does not" true
    (List.mem 0 streamed && List.mem 1 streamed && not (List.mem 2 streamed))

(* --- frep formation --- *)

let test_frep_formation_end_to_end () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m (Pipeline.passes Pipeline.ours);
  Alcotest.(check int) "sum gets a hardware loop" 1
    (List.length
       (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_snitch.frep_outer_op)))

let test_frep_not_formed_with_memory_ops () =
  let spec = Mlc_kernels.Builders.sum ~n:4 ~m:4 () in
  let m = spec.Mlc_kernels.Builders.build () in
  Pass.run m (Pipeline.passes { Pipeline.ours with Pipeline.streams = false });
  (* Without streams the loop body has explicit loads: no FREP. *)
  Alcotest.(check int) "no frep without streams" 0
    (List.length
       (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_snitch.frep_outer_op)))

(* --- LICM / CSE / IV strength reduction --- *)

let test_licm_hoists_invariants () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Func.func b ~name:"f" ~args:[ Ty.memref [ 8 ] Ty.F64 ] ~results:[] in
  let bb = Builder.at_end entry in
  let out = Ir.Block.arg entry 0 in
  let zero = Arith.const_index bb 0 in
  let eight = Arith.const_index bb 8 in
  let one = Arith.const_index bb 1 in
  ignore
    (Scf.for_ bb ~lb:zero ~ub:eight ~step:one (fun bb iv _ ->
         (* invariant: 2.0 * 3.0 *)
         let c = Arith.mulf bb (Arith.const_float bb 2.0) (Arith.const_float bb 3.0) in
         Memref.store bb c out [ iv ];
         []));
  Func.return_ bb [];
  Pass.run m [ Licm.pass ];
  let loop = List.hd (Ir.collect m (fun op -> Ir.Op.name op = Scf.for_op)) in
  let body_ops = Ir.Block.num_ops (Scf.body loop) in
  (* Only the store and the yield remain inside. *)
  Alcotest.(check int) "invariants hoisted" 2 body_ops

let test_iv_strength_reduction () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Mlc_riscv.Rv_func.func b ~name:"f" ~args:[ Mlc_riscv.Reg.Int_kind ] in
  let bb = Builder.at_end entry in
  let base = Ir.Block.arg entry 0 in
  let lb = Mlc_riscv.Rv.li bb 0 in
  let ub = Mlc_riscv.Rv.li bb 16 in
  ignore
    (Mlc_riscv.Rv_scf.for_ bb ~lb ~ub (fun bb iv _ ->
         let off = Mlc_riscv.Rv.slli bb iv 3 in
         let addr = Mlc_riscv.Rv.add bb base off in
         ignore (Mlc_riscv.Rv.fload bb Mlc_riscv.Rv.fld_op addr);
         []));
  Mlc_riscv.Rv_func.return_ bb [];
  Pass.run m [ Iv_strength_reduce.pass ];
  Alcotest.(check int) "shift removed from loop" 0
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv.slli_op)));
  let loop = List.hd (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv_scf.for_op)) in
  Alcotest.(check int) "loop gained a carried offset" 1
    (List.length (Mlc_riscv.Rv_scf.iter_operands loop))

let test_cse_shares_constants () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Mlc_riscv.Rv_func.func b ~name:"f" ~args:[] in
  let bb = Builder.at_end entry in
  let a = Mlc_riscv.Rv.li bb 8 in
  let c = Mlc_riscv.Rv.li bb 8 in
  let s = Mlc_riscv.Rv.add bb a c in
  ignore (Mlc_riscv.Rv.add bb s s);
  Mlc_riscv.Rv_func.return_ bb [];
  Pass.run m [ Cse.pass ];
  Alcotest.(check int) "duplicate li merged" 1
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv.li_op)))

let test_cse_keeps_iteration_copies () =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let _fn, entry = Mlc_riscv.Rv_func.func b ~name:"f" ~args:[ Mlc_riscv.Reg.Float_kind ] in
  let bb = Builder.at_end entry in
  let v = Ir.Block.arg entry 0 in
  let c1 = Mlc_riscv.Rv.fmv_d bb v in
  let c2 = Mlc_riscv.Rv.fmv_d bb v in
  ignore (Mlc_riscv.Rv.fbinary bb Mlc_riscv.Rv.fadd_d_op c1 c2);
  Mlc_riscv.Rv_func.return_ bb [];
  Pass.run m [ Cse.pass ];
  Alcotest.(check int) "fmv copies never merged" 2
    (List.length (Ir.collect m (fun op -> Ir.Op.name op = Mlc_riscv.Rv.fmv_d_op)))

let suite =
  [
    ( "transforms",
      [
        Alcotest.test_case "linalg->stream bounds" `Quick test_linalg_to_stream_bounds;
        Alcotest.test_case "fill becomes generic" `Quick test_fill_becomes_generic;
        Alcotest.test_case "scalar replacement marks" `Quick test_scalar_replacement_marks;
        Alcotest.test_case "fuse fill" `Quick test_fuse_fill;
        Alcotest.test_case "fuse fill buffer matching" `Quick
          test_fuse_fill_requires_adjacent_buffer;
        Alcotest.test_case "unroll-and-jam interleaves" `Quick test_unroll_jam_interleaves;
        Alcotest.test_case "unroll-and-jam splits" `Quick test_unroll_jam_splits_large_dims;
        Alcotest.test_case "unroll-and-jam skips parallel" `Quick
          test_unroll_jam_skips_parallel_kernels;
        Alcotest.test_case "pattern contiguity collapse" `Quick
          test_pattern_contiguity_collapse;
        Alcotest.test_case "pattern unit dims" `Quick test_pattern_unit_dims_dropped;
        Alcotest.test_case "pattern repeat detection" `Quick test_pattern_repeat_detection;
        Alcotest.test_case "pattern stride resolution" `Quick test_pattern_resolution_strides;
        QCheck_alcotest.to_alcotest prop_optimize_preserves_addresses;
        Alcotest.test_case "fma fusion" `Quick test_fma_fusion;
        Alcotest.test_case "fma fusion multi-use" `Quick test_fma_fusion_respects_multiple_uses;
        Alcotest.test_case "canonicalize" `Quick test_canonicalize_folds_and_dce;
        Alcotest.test_case "stream analysis: matmul" `Quick test_stream_analysis_matmul;
        Alcotest.test_case "stream analysis: conv hoists" `Quick test_stream_analysis_hoists_conv;
        Alcotest.test_case "stream analysis: RMW output" `Quick
          test_stream_analysis_skips_rmw_output;
        Alcotest.test_case "frep formation" `Quick test_frep_formation_end_to_end;
        Alcotest.test_case "frep blocked by memory ops" `Quick
          test_frep_not_formed_with_memory_ops;
        Alcotest.test_case "licm" `Quick test_licm_hoists_invariants;
        Alcotest.test_case "iv strength reduction" `Quick test_iv_strength_reduction;
        Alcotest.test_case "cse shares constants" `Quick test_cse_shares_constants;
        Alcotest.test_case "cse keeps copies" `Quick test_cse_keeps_iteration_copies;
      ] );
  ]
